//===- SpecParser.cpp -----------------------------------------------------===//
//
// Part of RefinedC++, a C++ reproduction of the RefinedC verifier (PLDI'21).
//
//===----------------------------------------------------------------------===//

#include "refinedc/SpecParser.h"

#include "support/Util.h"

#include <cctype>

using namespace rcc::refinedc;
using namespace rcc::pure;

//===----------------------------------------------------------------------===//
// Binder parsing
//===----------------------------------------------------------------------===//

static bool sortFromName(const std::string &S, Sort &Out) {
  if (S == "nat") {
    Out = Sort::Nat;
    return true;
  }
  if (S == "int" || S == "Z") {
    Out = Sort::Int;
    return true;
  }
  if (S == "bool") {
    Out = Sort::Bool;
    return true;
  }
  if (S == "loc") {
    Out = Sort::Loc;
    return true;
  }
  if (S == "multiset" || S == "gmultiset nat" || S == "{gmultiset nat}") {
    Out = Sort::MSet;
    return true;
  }
  if (S == "set" || S == "gset nat" || S == "{gset nat}") {
    Out = Sort::Set;
    return true;
  }
  if (S == "list" || S == "list nat" || S == "{list nat}") {
    Out = Sort::List;
    return true;
  }
  return false;
}

bool rcc::refinedc::parseBinder(const std::string &S, std::string &Name,
                                Sort &SortOut, rcc::DiagnosticEngine &Diags,
                                rcc::SourceLoc Loc) {
  size_t Colon = S.find(':');
  if (Colon == std::string::npos) {
    Diags.error(Loc, "expected 'name: sort' in binder '" + S + "'");
    return false;
  }
  Name = rcc::trim(S.substr(0, Colon));
  std::string SortStr = rcc::trim(S.substr(Colon + 1));
  if (!SortStr.empty() && SortStr.front() == '{' && SortStr.back() == '}')
    SortStr = rcc::trim(SortStr.substr(1, SortStr.size() - 2));
  if (!sortFromName(SortStr, SortOut)) {
    Diags.error(Loc, "unknown sort '" + SortStr + "' in binder '" + S + "'");
    return false;
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Micro-lexer
//===----------------------------------------------------------------------===//

void SpecParser::skipWs() {
  while (Pos < Text.size() &&
         std::isspace(static_cast<unsigned char>(Text[Pos])))
    ++Pos;
}

bool SpecParser::peekIs(const std::string &S) {
  skipWs();
  return Text.compare(Pos, S.size(), S) == 0;
}

bool SpecParser::eat(const std::string &S) {
  skipWs();
  if (Text.compare(Pos, S.size(), S) != 0)
    return false;
  // For word-like tokens, require a non-identifier character to follow.
  if (!S.empty() && (std::isalpha(static_cast<unsigned char>(S[0])) ||
                     S[0] == '_')) {
    size_t After = Pos + S.size();
    if (After < Text.size() &&
        (std::isalnum(static_cast<unsigned char>(Text[After])) ||
         Text[After] == '_'))
      return false;
  }
  Pos += S.size();
  return true;
}

bool SpecParser::atIdent() {
  skipWs();
  return Pos < Text.size() &&
         (std::isalpha(static_cast<unsigned char>(Text[Pos])) ||
          Text[Pos] == '_');
}

std::string SpecParser::ident() {
  skipWs();
  std::string Out;
  while (Pos < Text.size() &&
         (std::isalnum(static_cast<unsigned char>(Text[Pos])) ||
          Text[Pos] == '_'))
    Out += Text[Pos++];
  return Out;
}

void SpecParser::error(const std::string &Msg) {
  if (!HadError && !Quiet)
    Diags.error(Loc, "in spec '" + Text + "': " + Msg);
  HadError = true;
}

//===----------------------------------------------------------------------===//
// Sorts (for forall/exists binders in terms)
//===----------------------------------------------------------------------===//

Sort SpecParser::sortName() {
  if (eat("{")) {
    std::string S;
    while (Pos < Text.size() && Text[Pos] != '}')
      S += Text[Pos++];
    eat("}");
    Sort Out;
    if (sortFromName(rcc::trim(S), Out))
      return Out;
    error("unknown sort '" + S + "'");
    return Sort::Nat;
  }
  std::string S = ident();
  Sort Out;
  if (sortFromName(S, Out))
    return Out;
  error("unknown sort '" + S + "'");
  return Sort::Nat;
}

//===----------------------------------------------------------------------===//
// Terms
//===----------------------------------------------------------------------===//

TermRef SpecParser::term() { return ternary(); }

TermRef SpecParser::ternary() {
  TermRef C = implication();
  skipWs();
  if (eat("?")) {
    TermRef T = ternary();
    if (!eat(":"))
      error("expected ':' in conditional");
    TermRef E = ternary();
    return mkIte(C, T, E);
  }
  return C;
}

TermRef SpecParser::implication() {
  TermRef L = disjunction();
  if (eat("->") || eat("→")) // →
    return mkImplies(L, implication());
  return L;
}

TermRef SpecParser::disjunction() {
  TermRef L = conjunction();
  while (eat("||") || eat("\\/"))
    L = mkOr(L, conjunction());
  return L;
}

TermRef SpecParser::conjunction() {
  TermRef L = comparison();
  while (eat("&&") || eat("/\\") || eat("∧")) // ∧
    L = mkAnd(L, comparison());
  return L;
}

TermRef SpecParser::comparison() {
  TermRef L = additive();
  skipWs();
  if (eat("<=") || eat("≤")) // ≤
    return mkLe(L, additive());
  if (eat(">=") || eat("≥")) // ≥
    return mkGe(L, additive());
  if (eat("!=") || eat("≠")) // ≠
    return mkNe(L, additive());
  if (eat("==") || eat("="))
    return mkEq(L, additive());
  if (!NoAngle && eat("<"))
    return mkLt(L, additive());
  if (!NoAngle && eat(">"))
    return mkGt(L, additive());
  if (eat("∈") || eat("in")) { // ∈
    TermRef R = additive();
    if (R->sort() == Sort::Set)
      return mkSElem(L, R);
    return mkMElem(L, R);
  }
  return L;
}

TermRef SpecParser::additive() {
  TermRef L = multiplicative();
  while (true) {
    skipWs();
    if (eat("(+)") || eat("⊎")) { // ⊎
      L = mkMUnion(L, multiplicative());
      continue;
    }
    if (eat("(u)") || eat("∪")) { // ∪
      L = mkSUnion(L, multiplicative());
      continue;
    }
    if (eat("++")) {
      L = mkLApp(L, multiplicative());
      continue;
    }
    if (eat("::")) {
      L = mkLCons(L, multiplicative());
      continue;
    }
    if (eat("!!")) {
      L = mkLNth(L, multiplicative());
      continue;
    }
    if (peekIs("+") && !peekIs("++")) {
      eat("+");
      L = mkAdd(L, multiplicative());
      continue;
    }
    if (peekIs("-") && !peekIs("->")) {
      eat("-");
      L = mkSub(L, multiplicative());
      continue;
    }
    break;
  }
  return L;
}

TermRef SpecParser::multiplicative() {
  TermRef L = unary();
  while (true) {
    skipWs();
    if (eat("*")) {
      L = mkMul(L, unary());
      continue;
    }
    if (eat("/")) {
      L = mkDiv(L, unary());
      continue;
    }
    if (peekIs("%")) {
      eat("%");
      L = mkMod(L, unary());
      continue;
    }
    break;
  }
  return L;
}

TermRef SpecParser::unary() {
  skipWs();
  if (eat("!") || eat("¬")) // ¬
    return mkNot(unary());
  return primary();
}

TermRef SpecParser::primary() {
  skipWs();
  if (Pos >= Text.size()) {
    error("unexpected end of term");
    return mkNat(0);
  }

  // Multiset literals: {[]} is the empty multiset, {[x]} a singleton.
  if (eat("{[]}"))
    return mkMEmpty();
  if (peekIs("{[")) {
    eat("{[");
    TermRef X = term();
    if (!eat("]}"))
      error("expected ']}' closing multiset singleton");
    return mkMSingle(X);
  }
  // Braced sub-term (Coq escape in the paper); comparisons re-enable.
  if (eat("{")) {
    bool Saved = NoAngle;
    NoAngle = false;
    TermRef T = term();
    NoAngle = Saved;
    if (!eat("}"))
      error("expected '}'");
    return T;
  }
  if (eat("∅")) // ∅
    return mkMEmpty();

  if (eat("(")) {
    TermRef T = term();
    if (!eat(")"))
      error("expected ')'");
    return T;
  }

  // Numbers.
  if (std::isdigit(static_cast<unsigned char>(Text[Pos]))) {
    int64_t V = 0;
    while (Pos < Text.size() &&
           std::isdigit(static_cast<unsigned char>(Text[Pos])))
      V = V * 10 + (Text[Pos++] - '0');
    return mkNat(V);
  }

  // Quantifiers.
  if (eat("forall") || eat("∀")) { // ∀
    std::string N = ident();
    Sort S = Sort::Nat;
    if (eat(":"))
      S = sortName();
    if (!eat(","))
      eat(".");
    Scope[N] = S;
    TermRef Body = term();
    Scope.erase(N);
    return mkForall(N, S, Body);
  }
  if (eat("exists") || eat("∃")) { // ∃
    std::string N = ident();
    Sort S = Sort::Nat;
    if (eat(":"))
      S = sortName();
    if (!eat(","))
      eat(".");
    Scope[N] = S;
    TermRef Body = term();
    Scope.erase(N);
    return mkExists(N, S, Body);
  }

  if (eat("true"))
    return mkTrue();
  if (eat("false"))
    return mkFalse();
  if (eat("[]"))
    return mkLNil();

  // Builtin function-style operators.
  if (atIdent()) {
    size_t Save = Pos;
    std::string Id = ident();
    bool AdjacentParen = Pos < Text.size() && Text[Pos] == '(';
    skipWs();
    if (Id == "sizeof" && eat("(")) {
      eat("struct");
      std::string N = ident();
      if (N.empty() && eat("_")) // allow sizeof(struct_chunk) style
        N = ident();
      // Accept both "struct chunk" and "struct_chunk".
      if (rcc::startsWith(N, "struct_"))
        N = N.substr(7);
      if (!eat(")"))
        error("expected ')' after sizeof");
      auto It = Env.Layouts.find(N);
      if (It == Env.Layouts.end()) {
        error("sizeof of unknown struct '" + N + "'");
        return mkNat(0);
      }
      return mkNat(static_cast<int64_t>(It->second->Size));
    }
    if (Id == "global" && eat("(")) {
      std::string N = ident();
      if (!eat(")"))
        error("expected ')' after global(name");
      return mkVar("&g:" + N, Sort::Loc);
    }
    if (Id == "length" && eat("(")) {
      TermRef T = term();
      if (!eat(")"))
        error("expected ')'");
      return mkLLen(T);
    }
    if (Id == "size" && eat("(")) {
      TermRef T = term();
      if (!eat(")"))
        error("expected ')'");
      return mkMSize(T);
    }
    if (Id == "min" && eat("(")) {
      TermRef A = term();
      eat(",");
      TermRef B = term();
      eat(")");
      return mkMin(A, B);
    }
    if (Id == "max" && eat("(")) {
      TermRef A = term();
      eat(",");
      TermRef B = term();
      eat(")");
      return mkMax(A, B);
    }
    if (Id == "repeat" && eat("(")) {
      TermRef A = term();
      eat(",");
      TermRef B = term();
      eat(")");
      return mkLRepeat(A, B);
    }
    if (Id == "update" && eat("(")) {
      TermRef L = term();
      eat(",");
      TermRef I = term();
      eat(",");
      TermRef V = term();
      eat(")");
      return mkLUpdate(L, I, V);
    }
    // Uninterpreted application: f(args), result sort nat. The paren must be
    // adjacent (no space) so that `ls (+) rs` parses as a multiset union.
    if (AdjacentParen && eat("(")) {
      std::vector<TermRef> Args;
      if (!peekIs(")")) {
        do {
          Args.push_back(term());
        } while (eat(","));
      }
      if (!eat(")"))
        error("expected ')'");
      return mkApp(Id, Sort::Nat, std::move(Args));
    }
    // Variable.
    auto It = Scope.find(Id);
    if (It != Scope.end())
      return mkVar(Id, It->second);
    error("unbound specification variable '" + Id + "'");
    Pos = Save + Id.size();
    return mkVar(Id, Sort::Nat);
  }

  // Multiset forms spelled with braces+brackets: {[x]} / {[]}.
  // (Reached when '{' was consumed above only if grouping; handle directly.)
  error(std::string("unexpected character '") + Text[Pos] + "' in term");
  ++Pos;
  return mkNat(0);
}

TermRef SpecParser::parseTermFull() {
  TermRef T = term();
  skipWs();
  if (Pos != Text.size())
    error("trailing input after term");
  return T;
}

//===----------------------------------------------------------------------===//
// Types
//===----------------------------------------------------------------------===//

rcc::caesium::IntType SpecParser::intTypeName() {
  std::string N = ident();
  using namespace rcc::caesium;
  if (N == "size_t" || N == "u64" || N == "uint64_t" || N == "uintptr_t")
    return intU64();
  if (N == "u8" || N == "uint8_t" || N == "uchar")
    return intU8();
  if (N == "u16" || N == "uint16_t")
    return intU16();
  if (N == "u32" || N == "uint32_t" || N == "unsigned")
    return intU32();
  if (N == "i8" || N == "int8_t" || N == "char")
    return intI8();
  if (N == "i16" || N == "int16_t" || N == "short")
    return intI16();
  if (N == "i32" || N == "int32_t" || N == "int")
    return intI32();
  if (N == "i64" || N == "int64_t" || N == "long")
    return intI64();
  error("unknown integer type '" + N + "'");
  return intI32();
}

TermRef SpecParser::refinement() {
  // A refinement is an identifier, a number, or a braced term. A multiset
  // literal `{[..]}` is itself a term, not a brace group.
  skipWs();
  if (peekIs("{[")) {
    return primary();
  }
  if (peekIs("{")) {
    eat("{");
    TermRef T = term();
    if (!eat("}"))
      error("expected '}' after refinement term");
    return T;
  }
  if (Pos < Text.size() &&
      std::isdigit(static_cast<unsigned char>(Text[Pos]))) {
    int64_t V = 0;
    while (Pos < Text.size() &&
           std::isdigit(static_cast<unsigned char>(Text[Pos])))
      V = V * 10 + (Text[Pos++] - '0');
    return mkNat(V);
  }
  std::string Id = ident();
  // global(name) denotes the address of an annotated global.
  if (Id == "global" && Pos < Text.size() && Text[Pos] == '(') {
    eat("(");
    std::string N = ident();
    if (!eat(")"))
      error("expected ')' after global(name");
    return mkVar("&g:" + N, Sort::Loc);
  }
  auto It = Scope.find(Id);
  if (It != Scope.end())
    return mkVar(Id, It->second);
  error("unbound refinement variable '" + Id + "'");
  return mkVar(Id, Sort::Nat);
}

TypeRef SpecParser::typeCore() {
  // Terms appearing directly between type brackets must not treat '>' as a
  // comparison operator.
  struct AngleGuard {
    SpecParser &P;
    bool Saved;
    explicit AngleGuard(SpecParser &P) : P(P), Saved(P.NoAngle) {
      P.NoAngle = true;
    }
    ~AngleGuard() { P.NoAngle = Saved; }
  } Guard(*this);
  skipWs();
  if (eat("...")) {
    if (!SelfStructType) {
      error("'...' is only valid inside rc::ptr_type");
      return tyNull();
    }
    return SelfStructType;
  }
  if (eat("&own")) {
    if (!eat("<"))
      error("expected '<' after &own");
    TypeRef Inner = type();
    if (!eat(">"))
      error("expected '>' after &own<...");
    return tyOwn(Inner);
  }
  std::string Id = ident();
  if (Id == "exists") {
    // Type-level existential: `exists a. <type>` / `exists a: sort. <type>`.
    std::string N = ident();
    pure::Sort S = pure::Sort::Nat;
    if (eat(":"))
      S = sortName();
    if (!eat("."))
      error("expected '.' after exists binder");
    SpecScope Saved = Scope;
    Scope[N] = S;
    TypeRef Body = type();
    Scope = Saved;
    return tyExists(N, S, Body);
  }
  if (Id == "int") {
    if (!eat("<"))
      error("expected '<' after int");
    caesium::IntType Ity = intTypeName();
    if (!eat(">"))
      error("expected '>' after int<...");
    return tyInt(Ity);
  }
  if (Id == "bool") {
    caesium::IntType Ity = rcc::caesium::intU8();
    if (eat("<")) {
      Ity = intTypeName();
      eat(">");
    }
    return tyBool(Ity);
  }
  if (Id == "null")
    return tyNull();
  if (Id == "void")
    return tyAny(mkNat(0));
  if (Id == "uninit") {
    if (!eat("<"))
      error("expected '<' after uninit");
    TermRef N = nullptr;
    // Either a term or a struct/type name whose size is meant.
    size_t Save = Pos;
    if (atIdent()) {
      std::string Name = ident();
      if (rcc::startsWith(Name, "struct_"))
        Name = Name.substr(7);
      auto It = Env.Layouts.find(Name);
      if (It != Env.Layouts.end() && peekIs(">")) {
        N = mkNat(static_cast<int64_t>(It->second->Size));
      } else {
        Pos = Save;
      }
    }
    if (!N)
      N = term();
    if (!eat(">"))
      error("expected '>' after uninit<...");
    return tyUninit(N);
  }
  if (Id == "optional") {
    if (!eat("<"))
      error("expected '<' after optional");
    TypeRef T1 = type();
    if (!eat(","))
      error("expected ',' in optional");
    TypeRef T2 = type();
    if (!eat(">"))
      error("expected '>' after optional<...");
    // The refinement is attached by the caller (refn @ optional<..>).
    return tyOptional(mkTrue(), T1, T2);
  }
  if (Id == "wand") {
    // wand<own LOC : TYPE, TYPE>
    if (!eat("<"))
      error("expected '<' after wand");
    if (!eat("own"))
      error("expected 'own' introducing the wand hole");
    TermRef HoleLoc = refinement();
    if (!eat(":"))
      error("expected ':' in wand hole");
    TypeRef HoleTy = type();
    if (!eat(","))
      error("expected ',' in wand");
    TypeRef Res = type();
    if (!eat(">"))
      error("expected '>' after wand<...");
    return tyWand(HoleLoc, HoleTy, Res);
  }
  if (Id == "padded") {
    if (!eat("<"))
      error("expected '<' after padded");
    TypeRef Inner = type();
    if (!eat(","))
      error("expected ',' in padded");
    TermRef N = term();
    if (!eat(">"))
      error("expected '>' after padded<...");
    return tyPadded(Inner, N);
  }
  if (Id == "array") {
    // array<int<ity>>: cell i has type (xs !! i) @ int<ity>, where xs is
    // the refinement list; array<Named> uses a named one-parameter type.
    if (!eat("<"))
      error("expected '<' after array");
    if (eat("int")) {
      if (!eat("<"))
        error("expected '<' after int");
      caesium::IntType Ity = intTypeName();
      if (!eat(">"))
        error("expected '>' closing int<...");
      if (!eat(">"))
        error("expected '>' after array<...");
      TypeRef Elem = tyInt(Ity, mkVar("#e", pure::Sort::Nat));
      return tyArray(Elem, "#e", Ity.ByteSize, nullptr);
    }
    std::string ElemName = ident();
    if (!eat(">"))
      error("expected '>' after array<...");
    auto Def = Env.named(ElemName);
    if (!Def) {
      error("unknown array element type '" + ElemName + "'");
      return tyNull();
    }
    uint64_t ElemSize = Def->Layout ? Def->Layout->Size : 0;
    TypeRef Elem = tyNamed(Def, mkVar("#e", Def->RefnSort));
    return tyArray(Elem, "#e", ElemSize, nullptr);
  }
  if (Id == "atomicbool") {
    // atomicbool<ity, H_true, H_false> where each payload is `true` (no
    // resource), `own <loc> : <type>`, or `{prop}` (Section 6).
    if (!eat("<"))
      error("expected '<' after atomicbool");
    caesium::IntType Ity = intTypeName();
    auto ParseSpec = [&]() -> ResList {
      ResList Out;
      skipWs();
      if (eat("true"))
        return Out;
      if (eat("own")) {
        TermRef L = refinement();
        if (!eat(":"))
          error("expected ':' in atomicbool payload");
        TypeRef T = type();
        Out.push_back(ResAtom::loc(L, T));
        return Out;
      }
      if (peekIs("{")) {
        eat("{");
        bool Saved = NoAngle;
        NoAngle = false;
        TermRef P = term();
        NoAngle = Saved;
        if (!eat("}"))
          error("expected '}' closing atomicbool payload");
        Out.push_back(ResAtom::pure(P));
        return Out;
      }
      error("expected 'true', 'own ...' or '{prop}' in atomicbool payload");
      return Out;
    };
    ResList HT, HF;
    if (eat(",")) {
      HT = ParseSpec();
      if (eat(","))
        HF = ParseSpec();
    }
    if (!eat(">"))
      error("expected '>' after atomicbool<...");
    return tyAtomicBool(Ity, nullptr, std::move(HT), std::move(HF));
  }
  if (Id == "any") {
    if (!eat("<"))
      error("expected '<' after any");
    TermRef N = term();
    if (!eat(">"))
      error("expected '>' after any<...");
    return tyAny(N);
  }
  if (Id == "fn") {
    if (!eat("<"))
      error("expected '<' after fn");
    std::string SpecName = ident();
    if (!eat(">"))
      error("expected '>' after fn<...");
    auto It = Env.FnSpecs.find(SpecName);
    if (It == Env.FnSpecs.end()) {
      error("unknown function spec '" + SpecName + "'");
      return tyNull();
    }
    return tyFnPtr(It->second);
  }
  // Named user types.
  if (auto Def = Env.named(Id))
    return tyNamed(Def, nullptr);
  error("unknown type '" + Id + "'");
  return tyNull();
}

TypeRef SpecParser::type() {
  // Try: refinement '@' typeCore. A refinement is ident/number/{term}.
  size_t Save = Pos;
  skipWs();
  bool CouldBeRefn =
      Pos < Text.size() &&
      (std::isalnum(static_cast<unsigned char>(Text[Pos])) ||
       Text[Pos] == '_' || Text[Pos] == '{');
  if (CouldBeRefn) {
    // Heuristic: parse a refinement, then require '@'. On failure rewind
    // silently (the text is a bare type, not a refined one).
    bool SavedHadError = HadError;
    bool SavedQuiet = Quiet;
    Quiet = true;
    TermRef R = refinement();
    skipWs();
    bool RefnOk = !HadError;
    Quiet = SavedQuiet;
    HadError = SavedHadError;
    if (RefnOk && eat("@")) {
      TypeRef T = typeCore();
      return withRefn(T, R);
    }
    Pos = Save;
  }
  return typeCore();
}

TypeRef SpecParser::parseTypeFull() {
  TypeRef T = type();
  skipWs();
  if (Pos != Text.size())
    error("trailing input after type");
  return T;
}

bool SpecParser::parseAtomFull(ResAtom &Out) {
  skipWs();
  if (eat("own")) {
    TermRef L = refinement();
    if (!eat(":"))
      error("expected ':' after 'own <loc>'");
    TypeRef T = type();
    skipWs();
    if (Pos != Text.size())
      error("trailing input after ensures atom");
    Out = ResAtom::loc(L, T);
    return !HadError;
  }
  // Otherwise a pure proposition.
  TermRef P = term();
  skipWs();
  if (Pos != Text.size())
    error("trailing input after proposition");
  Out = ResAtom::pure(P);
  return !HadError;
}

bool SpecParser::parseInvVarFull(std::string &Var, TypeRef &Ty) {
  Var = ident();
  if (!eat(":")) {
    error("expected ':' after variable name in inv_vars");
    return false;
  }
  Ty = type();
  skipWs();
  if (Pos != Text.size())
    error("trailing input after inv_vars type");
  return !HadError;
}
