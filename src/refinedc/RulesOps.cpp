//===- RulesOps.cpp - Operator and call typing rules ----------------------===//
//
// Part of RefinedC++, a C++ reproduction of the RefinedC verifier (PLDI'21).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Typing rules for binary/unary operators (including Figure 6's
/// O-ADD-UNINIT and O-OPTIONAL-EQ and the ownership-splitting pointer
/// arithmetic of Section 6) and for function calls against RefinedC function
/// types (first-class function pointers, Section 4).
///
//===----------------------------------------------------------------------===//

#include "refinedc/RulesCommon.h"

#include "caesium/Ast.h"

using namespace rcc;
using namespace rcc::refinedc;
using namespace rcc::refinedc::rules;
using namespace rcc::lithium;
using namespace rcc::pure;
using caesium::BinOpKind;
using caesium::UnOpKind;

//===----------------------------------------------------------------------===//
// Common helper implementations
//===----------------------------------------------------------------------===//

GoalRef rcc::refinedc::rules::mkSubsumeV(TermRef V, TypeRef T1, TypeRef T2,
                                         GoalRef K, rcc::SourceLoc Loc) {
  Judgment J;
  J.K = JudgKind::SubsumeV;
  J.V1 = V;
  J.T1 = std::move(T1);
  J.T2 = std::move(T2);
  J.KGoal = std::move(K);
  J.Loc = Loc;
  return gJudg(std::move(J));
}

GoalRef rcc::refinedc::rules::mkSubsumeL(TermRef L, TypeRef T1, TypeRef T2,
                                         GoalRef K, rcc::SourceLoc Loc) {
  Judgment J;
  J.K = JudgKind::SubsumeL;
  J.V1 = L;
  J.T1 = std::move(T1);
  J.T2 = std::move(T2);
  J.KGoal = std::move(K);
  J.Loc = Loc;
  return gJudg(std::move(J));
}

TypeRef rcc::refinedc::rules::substTypeMap(
    TypeRef T, const std::map<std::string, TermRef> &Subst) {
  for (const auto &[N, R] : Subst)
    T = substTypeVar(T, N, R);
  return T;
}

ResList rcc::refinedc::rules::substResMap(
    ResList H, const std::map<std::string, TermRef> &Subst) {
  for (const auto &[N, R] : Subst)
    H = substResVar(H, N, R);
  return H;
}

const ResAtom *rcc::refinedc::rules::findValAtom(Engine &E, TermRef V) {
  V = E.resolve(V);
  for (const ResAtom &A : E.Delta)
    if (A.K == ResAtom::ValType && E.resolve(A.Subject) == V)
      return &A;
  return nullptr;
}

bool rcc::refinedc::rules::trySideCond(Engine &E, TermRef Phi) {
  pure::SolveResult R = E.solver().prove(E.Gamma, Phi, E.evars());
  if (!R.Proved)
    return false;
  if (R.Manual)
    ++E.stats().SideCondManual;
  else
    ++E.stats().SideCondAuto;
  std::vector<TermRef> RHyps;
  for (TermRef H : E.Gamma)
    RHyps.push_back(E.evars().resolve(H));
  TermRef RProp = E.evars().resolve(Phi);
  E.record({lithium::DerivStep::SideCond, R.Engine, RProp->str(), RProp,
            std::move(RHyps), R.Manual});
  return true;
}

//===----------------------------------------------------------------------===//
// Integer operator helpers
//===----------------------------------------------------------------------===//

namespace {

/// The refinement term of an Int/Bool-typed operand (bools coerce to 0/1).
TermRef intTermOf(Engine &E, TypeRef T) {
  T = stripC(E, T);
  if (T->K == TypeKind::Int)
    return T->Refn;
  if (T->K == TypeKind::Bool && T->Refn)
    return mkIte(T->Refn, mkNat(1), mkNat(0));
  return nullptr;
}

/// Emits the no-overflow side conditions for a result of type \p Ity.
/// The value term is mathematical; 8-byte unsigned results are modeled as
/// unbounded naturals (see DESIGN.md).
ResList rangeConds(caesium::IntType Ity, TermRef V) {
  ResList Out;
  if (!Ity.Signed) {
    // Nat-sorted terms are >= 0 by construction; check the upper bound when
    // it is representable.
    if (Ity.ByteSize < 8)
      Out.push_back(ResAtom::pure(
          mkLe(V, mkNat(static_cast<int64_t>(Ity.maxVal())))));
    return Out;
  }
  Out.push_back(ResAtom::pure(mkLe(mkInt(Ity.minVal()), V)));
  if (Ity.ByteSize <= 8)
    Out.push_back(ResAtom::pure(
        mkLe(V, mkInt(static_cast<int64_t>(Ity.maxVal())))));
  return Out;
}

bool isIntLike(TypeRef T) {
  T = peel(T);
  return T->K == TypeKind::Int || T->K == TypeKind::Bool;
}

bool isPlaceLike(TypeRef T) {
  T = peel(T);
  return T->K == TypeKind::Place || T->K == TypeKind::ValueOf;
}

TermRef placeLoc(TypeRef T) {
  return peel(T)->Refn;
}

} // namespace

//===----------------------------------------------------------------------===//
// BinOp rules
//===----------------------------------------------------------------------===//

static void registerBinOpRules(RuleRegistry &R) {
  auto OpIs = [](const Judgment &J, BinOpKind K) {
    return static_cast<BinOpKind>(J.Op) == K;
  };
  auto IsCmp = [OpIs](const Judgment &J) {
    return OpIs(J, BinOpKind::EqOp) || OpIs(J, BinOpKind::NeOp) ||
           OpIs(J, BinOpKind::LtOp) || OpIs(J, BinOpKind::LeOp) ||
           OpIs(J, BinOpKind::GtOp) || OpIs(J, BinOpKind::GeOp);
  };
  auto IsArith = [OpIs](const Judgment &J) {
    return OpIs(J, BinOpKind::Add) || OpIs(J, BinOpKind::Sub) ||
           OpIs(J, BinOpKind::Mul) || OpIs(J, BinOpKind::Div) ||
           OpIs(J, BinOpKind::Mod) || OpIs(J, BinOpKind::Shl) ||
           OpIs(J, BinOpKind::Shr) || OpIs(J, BinOpKind::BitAnd) ||
           OpIs(J, BinOpKind::BitOr) || OpIs(J, BinOpKind::BitXor);
  };
  auto IsPtrCmp = [OpIs](const Judgment &J) {
    return OpIs(J, BinOpKind::PtrEq) || OpIs(J, BinOpKind::PtrNe);
  };

  // Unfold valueOf operands whose ownership is parked in Δ (moved pointers
  // circulating through slots).
  R.add({"BINOP-UNFOLD-VALUEOF", JudgKind::BinOpJ, 90,
         [](Engine &E, const Judgment &J) {
           return (peel(E.resolveTy(J.T1))->K == TypeKind::ValueOf &&
                   findValAtom(E, peel(E.resolveTy(J.T1))->Refn)) ||
                  (peel(E.resolveTy(J.T2))->K == TypeKind::ValueOf &&
                   findValAtom(E, peel(E.resolveTy(J.T2))->Refn));
         },
         [](Engine &E, const Judgment &J) -> GoalRef {
           Judgment J2 = J;
           TypeRef T1 = peel(E.resolveTy(J.T1));
           if (T1->K == TypeKind::ValueOf && findValAtom(E, T1->Refn)) {
             ResAtom A;
             if (!E.popValAtom(T1->Refn, A, J.Loc))
               return nullptr;
             J2.V1 = T1->Refn;
             J2.T1 = A.Ty;
           } else {
             TypeRef T2 = peel(E.resolveTy(J.T2));
             ResAtom A;
             if (!E.popValAtom(T2->Refn, A, J.Loc))
               return nullptr;
             J2.V2 = T2->Refn;
             J2.T2 = A.Ty;
           }
           return gJudg(std::move(J2));
         }});

  // Unfold named operand types (e.g. chunks_t compared against NULL).
  R.add({"BINOP-UNFOLD-NAMED", JudgKind::BinOpJ, 85,
         [](Engine &E, const Judgment &J) {
           return peel(E.resolveTy(J.T1))->K == TypeKind::Named ||
                  peel(E.resolveTy(J.T2))->K == TypeKind::Named;
         },
         [](Engine &E, const Judgment &J) -> GoalRef {
           Judgment J2 = J;
           TypeRef T1 = stripC(E, J.T1);
           TypeRef T2 = stripC(E, J.T2);
           if (T1->K == TypeKind::Named)
             T1 = stripC(E, unfoldNamed(*T1));
           if (T2->K == TypeKind::Named)
             T2 = stripC(E, unfoldNamed(*T2));
           J2.T1 = T1;
           J2.T2 = T2;
           return gJudg(std::move(J2));
         }});

  // Integer arithmetic: compute the mathematical result and emit the
  // in-range side conditions that make the C operation defined.
  R.add({"BINOP-INT-ARITH", JudgKind::BinOpJ, 0,
         [IsArith](Engine &E, const Judgment &J) {
           return IsArith(J) && isIntLike(E.resolveTy(J.T1)) &&
                  isIntLike(E.resolveTy(J.T2));
         },
         [OpIs](Engine &E, const Judgment &J) -> GoalRef {
           TermRef N1 = intTermOf(E, J.T1);
           TermRef N2 = intTermOf(E, J.T2);
           if (!N1 || !N2) {
             E.fail("arithmetic on an integer without a known value", J.Loc);
             return nullptr;
           }
           ResList Conds;
           TermRef V = nullptr;
           switch (static_cast<BinOpKind>(J.Op)) {
           case BinOpKind::Add:
             V = mkAdd(N1, N2);
             break;
           case BinOpKind::Sub:
             V = mkSub(N1, N2);
             if (!J.Ity.Signed)
               Conds.push_back(ResAtom::pure(mkLe(N2, N1)));
             break;
           case BinOpKind::Mul:
             V = mkMul(N1, N2);
             break;
           case BinOpKind::Div:
             V = mkDiv(N1, N2);
             Conds.push_back(ResAtom::pure(mkNe(N2, mkNat(0))));
             break;
           case BinOpKind::Mod:
             V = mkMod(N1, N2);
             Conds.push_back(ResAtom::pure(mkNe(N2, mkNat(0))));
             break;
           case BinOpKind::Shl:
             V = mkMul(N1, mkApp("pow2", Sort::Nat, {N2}));
             Conds.push_back(ResAtom::pure(
                 mkLt(N2, mkNat(static_cast<int64_t>(J.Ity.bits())))));
             break;
           case BinOpKind::Shr:
             V = mkDiv(N1, mkApp("pow2", Sort::Nat, {N2}));
             Conds.push_back(ResAtom::pure(
                 mkLt(N2, mkNat(static_cast<int64_t>(J.Ity.bits())))));
             break;
           case BinOpKind::BitAnd:
             V = mkApp("land", sortOfIntType(J.Ity), {N1, N2});
             break;
           case BinOpKind::BitOr:
             V = mkApp("lor", sortOfIntType(J.Ity), {N1, N2});
             break;
           case BinOpKind::BitXor:
             V = mkApp("lxor", sortOfIntType(J.Ity), {N1, N2});
             break;
           default:
             return nullptr;
           }
           V = E.resolve(V);
           bool Bitwise = OpIs(J, BinOpKind::BitAnd) ||
                          OpIs(J, BinOpKind::BitOr) ||
                          OpIs(J, BinOpKind::BitXor);
           if (!Bitwise)
             for (ResAtom A : rangeConds(J.Ity, V))
               Conds.push_back(A);
           return gStar(std::move(Conds), J.KVal(V, tyInt(J.Ity, V)));
         },
         RuleKey::onOp(BinOpKind::Add, BinOpKind::Sub, BinOpKind::Mul,
                       BinOpKind::Div, BinOpKind::Mod,
                       BinOpKind::Shl, BinOpKind::Shr,
                       BinOpKind::BitAnd, BinOpKind::BitOr,
                       BinOpKind::BitXor)});

  // Integer comparisons yield refined booleans.
  R.add({"BINOP-INT-CMP", JudgKind::BinOpJ, 0,
         [IsCmp](Engine &E, const Judgment &J) {
           return IsCmp(J) && isIntLike(E.resolveTy(J.T1)) &&
                  isIntLike(E.resolveTy(J.T2));
         },
         [](Engine &E, const Judgment &J) -> GoalRef {
           TermRef N1 = intTermOf(E, J.T1);
           TermRef N2 = intTermOf(E, J.T2);
           if (!N1 || !N2) {
             E.fail("comparison of an integer without a known value", J.Loc);
             return nullptr;
           }
           TermRef Phi = nullptr;
           switch (static_cast<BinOpKind>(J.Op)) {
           case BinOpKind::EqOp:
             Phi = mkEq(N1, N2);
             break;
           case BinOpKind::NeOp:
             Phi = mkNe(N1, N2);
             break;
           case BinOpKind::LtOp:
             Phi = mkLt(N1, N2);
             break;
           case BinOpKind::LeOp:
             Phi = mkLe(N1, N2);
             break;
           case BinOpKind::GtOp:
             Phi = mkGt(N1, N2);
             break;
           case BinOpKind::GeOp:
             Phi = mkGe(N1, N2);
             break;
           default:
             return nullptr;
           }
           Phi = E.resolve(Phi);
           return J.KVal(mkIte(Phi, mkNat(1), mkNat(0)),
                         tyBool(caesium::intI32(), Phi));
         },
         RuleKey::onOp(BinOpKind::EqOp, BinOpKind::NeOp,
                       BinOpKind::LtOp, BinOpKind::LeOp,
                       BinOpKind::GtOp, BinOpKind::GeOp)});

  // O-ADD-UNINIT (Figure 6): splitting uninitialized blocks via pointer
  // arithmetic.
  R.add({"O-ADD-UNINIT", JudgKind::BinOpJ, 10,
         [OpIs](Engine &E, const Judgment &J) {
           if (!OpIs(J, BinOpKind::PtrAdd))
             return false;
           TypeRef T1 = peel(E.resolveTy(J.T1));
           return T1->K == TypeKind::Own &&
                  peel(T1->Children[0])->K == TypeKind::Uninit &&
                  isIntLike(E.resolveTy(J.T2));
         },
         [](Engine &E, const Judgment &J) -> GoalRef {
           TypeRef T1 = stripC(E, J.T1);
           TypeRef U = stripC(E, T1->Children[0]);
           TermRef N1 = U->Size;
           TermRef N2 = intTermOf(E, J.T2);
           if (!N2) {
             E.fail("pointer arithmetic with an unknown index", J.Loc);
             return nullptr;
           }
           TermRef Bytes =
               J.ElemSize == 1
                   ? N2
                   : mkMul(N2, mkNat(static_cast<int64_t>(J.ElemSize)));
           Bytes = E.resolve(Bytes);
           TermRef Ptr = T1->Refn ? T1->Refn : J.V1;
           // Adding zero (a field at offset 0) is the identity.
           if (Bytes->isConst() && Bytes->num() == 0)
             return J.KVal(Ptr, withRefn(T1, Ptr));
           // ⌜bytes <= n1⌝ ∗ (v1 ◁ &own(uninit(bytes)) -∗
           //                   G(v1 + bytes, &own(uninit(n1 - bytes))))
           TermRef Rest = E.resolve(mkSub(N1, Bytes));
           ResAtom Keep = ResAtom::val(Ptr, tyOwn(tyUninit(Bytes), Ptr));
           TermRef NewPtr = locOffset(Ptr, Bytes);
           return gStar(
               {ResAtom::pure(mkLe(Bytes, N1))},
               gWand({Keep},
                     J.KVal(NewPtr, tyOwn(tyUninit(Rest), NewPtr))));
         },
         RuleKey::onOp(BinOpKind::PtrAdd)});

  // Pointer arithmetic on an optional whose refinement is provable (e.g.
  // under a requires clause excluding NULL): act on the pointer branch.
  R.add({"PTRADD-OPTIONAL", JudgKind::BinOpJ, 6,
         [OpIs](Engine &E, const Judgment &J) {
           return OpIs(J, BinOpKind::PtrAdd) &&
                  peel(E.resolveTy(J.T1))->K == TypeKind::Optional &&
                  isIntLike(E.resolveTy(J.T2));
         },
         [](Engine &E, const Judgment &J) -> GoalRef {
           TypeRef T1 = stripC(E, J.T1);
           TermRef Phi = T1->Refn ? T1->Refn : mkTrue();
           if (!trySideCond(E, Phi)) {
             E.fail("pointer arithmetic on a possibly-NULL value (type " +
                        T1->str() + "); test it against NULL first",
                    J.Loc);
             return nullptr;
           }
           Judgment J2 = J;
           TypeRef Child = peel(T1->Children[0]);
           if (Child->K == TypeKind::Own && !Child->Refn)
             Child = withRefn(Child, J.V1);
           J2.T1 = Child;
           return gJudg(std::move(J2));
         },
         RuleKey::onOp(BinOpKind::PtrAdd)});

  // Pointer + constant into an owned composite: focus the pointee into Δ
  // and yield a place (field access through &own).
  R.add({"PTRADD-OWN-FOCUS", JudgKind::BinOpJ, 5,
         [OpIs](Engine &E, const Judgment &J) {
           if (!OpIs(J, BinOpKind::PtrAdd))
             return false;
           TypeRef T1 = peel(E.resolveTy(J.T1));
           return T1->K == TypeKind::Own &&
                  peel(T1->Children[0])->K != TypeKind::Uninit &&
                  isIntLike(E.resolveTy(J.T2));
         },
         [](Engine &E, const Judgment &J) -> GoalRef {
           TypeRef T1 = stripC(E, J.T1);
           TermRef Ptr = T1->Refn ? E.resolve(T1->Refn) : E.resolve(J.V1);
           TermRef N2 = intTermOf(E, J.T2);
           if (!N2)
             return nullptr;
           TermRef Bytes =
               J.ElemSize == 1
                   ? N2
                   : mkMul(N2, mkNat(static_cast<int64_t>(J.ElemSize)));
           E.pushAtom(ResAtom::loc(Ptr, T1->Children[0]));
           TermRef L = locOffset(Ptr, E.resolve(Bytes));
           return J.KVal(L, tyPlace(L));
         },
         RuleKey::onOp(BinOpKind::PtrAdd)});

  // Pointer arithmetic on places/valueOf values: pure address computation.
  R.add({"PTRADD-PLACE", JudgKind::BinOpJ, 0,
         [OpIs](Engine &E, const Judgment &J) {
           return (OpIs(J, BinOpKind::PtrAdd) ||
                   OpIs(J, BinOpKind::PtrSub)) &&
                  isPlaceLike(E.resolveTy(J.T1)) &&
                  isIntLike(E.resolveTy(J.T2));
         },
         [OpIs](Engine &E, const Judgment &J) -> GoalRef {
           TermRef Base = placeLoc(stripC(E, J.T1));
           TermRef N2 = intTermOf(E, J.T2);
           if (!N2) {
             E.fail("pointer arithmetic with an unknown index", J.Loc);
             return nullptr;
           }
           TermRef Bytes =
               J.ElemSize == 1
                   ? N2
                   : mkMul(N2, mkNat(static_cast<int64_t>(J.ElemSize)));
           if (OpIs(J, BinOpKind::PtrSub))
             Bytes = mkSub(mkNat(0), Bytes);
           TermRef L = locOffset(Base, E.resolve(Bytes));
           return J.KVal(L, tyPlace(L));
         },
         RuleKey::onOp(BinOpKind::PtrAdd, BinOpKind::PtrSub)});

  // O-OPTIONAL-EQ (Figure 6): comparing an optional against NULL.
  auto OptNullRule = [](bool OptionalOnLeft) {
    return [OptionalOnLeft](Engine &E, const Judgment &J) -> GoalRef {
      TypeRef TOpt = stripC(E, OptionalOnLeft ? J.T1 : J.T2);
      TermRef VOpt = OptionalOnLeft ? J.V1 : J.V2;
      TermRef Phi = TOpt->Refn ? TOpt->Refn : mkTrue();
      bool IsEq = static_cast<BinOpKind>(J.Op) == BinOpKind::PtrEq;
      // φ branch: the value is a non-null pointer (first child).
      TypeRef Child = TOpt->Children[0];
      if (peel(Child)->K == TypeKind::Own && !peel(Child)->Refn)
        Child = withRefn(peel(Child), VOpt);
      TermRef EqRes = IsEq ? mkFalse() : mkTrue();
      TermRef NeRes = IsEq ? mkTrue() : mkFalse();
      GoalRef G1 = gWand({ResAtom::pure(Phi), ResAtom::val(VOpt, Child)},
                         J.KVal(mkIte(EqRes, mkNat(1), mkNat(0)),
                                tyBool(caesium::intI32(), EqRes)));
      // In the negative branch the value is known NULL (second child).
      GoalRef G2 = gWand({ResAtom::pure(mkNot(Phi)),
                          ResAtom::val(VOpt, TOpt->Children[1])},
                         J.KVal(mkIte(NeRes, mkNat(1), mkNat(0)),
                                tyBool(caesium::intI32(), NeRes)));
      return gConj(G1, G2);
    };
  };
  R.add({"O-OPTIONAL-EQ", JudgKind::BinOpJ, 20,
         [IsPtrCmp](Engine &E, const Judgment &J) {
           return IsPtrCmp(J) &&
                  peel(E.resolveTy(J.T1))->K == TypeKind::Optional &&
                  peel(E.resolveTy(J.T2))->K == TypeKind::Null;
         },
         OptNullRule(true),
         RuleKey::onOp(BinOpKind::PtrEq, BinOpKind::PtrNe)});
  R.add({"O-OPTIONAL-EQ-SYM", JudgKind::BinOpJ, 19,
         [IsPtrCmp](Engine &E, const Judgment &J) {
           return IsPtrCmp(J) &&
                  peel(E.resolveTy(J.T2))->K == TypeKind::Optional &&
                  peel(E.resolveTy(J.T1))->K == TypeKind::Null;
         },
         OptNullRule(false),
         RuleKey::onOp(BinOpKind::PtrEq, BinOpKind::PtrNe)});

  // Owned/placed pointers are never NULL.
  R.add({"PTR-CMP-NONNULL", JudgKind::BinOpJ, 10,
         [IsPtrCmp](Engine &E, const Judgment &J) {
           auto NonNull = [](TypeRef T) {
             TypeKind K = peel(T)->K;
             return K == TypeKind::Own || K == TypeKind::Place;
           };
           auto IsNull = [](TypeRef T) {
             return peel(T)->K == TypeKind::Null;
           };
           return IsPtrCmp(J) &&
                  ((NonNull(E.resolveTy(J.T1)) && IsNull(E.resolveTy(J.T2))) ||
                   (NonNull(E.resolveTy(J.T2)) && IsNull(E.resolveTy(J.T1))));
         },
         [](Engine &E, const Judgment &J) -> GoalRef {
           bool IsEq = static_cast<BinOpKind>(J.Op) == BinOpKind::PtrEq;
           // Keep the non-null operand's ownership.
           TypeRef T1 = stripC(E, J.T1);
           TypeRef T2 = stripC(E, J.T2);
           ResList Keep;
           if (T1->K != TypeKind::Null && T1->K != TypeKind::Place)
             Keep.push_back(ResAtom::val(J.V1, T1));
           if (T2->K != TypeKind::Null && T2->K != TypeKind::Place)
             Keep.push_back(ResAtom::val(J.V2, T2));
           TermRef Res = IsEq ? mkFalse() : mkTrue();
           return gWand(Keep,
                        J.KVal(mkIte(Res, mkNat(1), mkNat(0)),
                               tyBool(caesium::intI32(), Res)));
         },
         RuleKey::onOp(BinOpKind::PtrEq, BinOpKind::PtrNe)});

  R.add({"PTR-CMP-NULL-NULL", JudgKind::BinOpJ, 9,
         [IsPtrCmp](Engine &E, const Judgment &J) {
           return IsPtrCmp(J) &&
                  peel(E.resolveTy(J.T1))->K == TypeKind::Null &&
                  peel(E.resolveTy(J.T2))->K == TypeKind::Null;
         },
         [](Engine &E, const Judgment &J) -> GoalRef {
           bool IsEq = static_cast<BinOpKind>(J.Op) == BinOpKind::PtrEq;
           TermRef Res = IsEq ? mkTrue() : mkFalse();
           return J.KVal(mkIte(Res, mkNat(1), mkNat(0)),
                         tyBool(caesium::intI32(), Res));
         },
         RuleKey::onOp(BinOpKind::PtrEq, BinOpKind::PtrNe)});

  // Pointer equality on two places: syntactic location equality.
  R.add({"PTR-CMP-PLACES", JudgKind::BinOpJ, 8,
         [IsPtrCmp](Engine &E, const Judgment &J) {
           return IsPtrCmp(J) && isPlaceLike(E.resolveTy(J.T1)) &&
                  isPlaceLike(E.resolveTy(J.T2));
         },
         [](Engine &E, const Judgment &J) -> GoalRef {
           TermRef L1 = placeLoc(stripC(E, J.T1));
           TermRef L2 = placeLoc(stripC(E, J.T2));
           bool IsEq = static_cast<BinOpKind>(J.Op) == BinOpKind::PtrEq;
           TermRef Phi = IsEq ? mkEq(L1, L2) : mkNe(L1, L2);
           Phi = E.resolve(Phi);
           return J.KVal(mkIte(Phi, mkNat(1), mkNat(0)),
                         tyBool(caesium::intI32(), Phi));
         },
         RuleKey::onOp(BinOpKind::PtrEq, BinOpKind::PtrNe)});
}

//===----------------------------------------------------------------------===//
// UnOp rules
//===----------------------------------------------------------------------===//

static void registerUnOpRules(RuleRegistry &R) {
  auto UOpIs = [](const Judgment &J, UnOpKind K) {
    return static_cast<UnOpKind>(J.Op) == K;
  };

  R.add({"UNOP-CAST-INT", JudgKind::UnOpJ, 0,
         [UOpIs](Engine &E, const Judgment &J) {
           return UOpIs(J, UnOpKind::Cast) && isIntLike(E.resolveTy(J.T1));
         },
         [](Engine &E, const Judgment &J) -> GoalRef {
           TermRef N = intTermOf(E, J.T1);
           if (!N) {
             E.fail("cast of an integer without a known value", J.Loc);
             return nullptr;
           }
           ResList Conds = rangeConds(J.ToIty, N);
           return gStar(std::move(Conds), J.KVal(N, tyInt(J.ToIty, N)));
         },
         RuleKey::onOp(UnOpKind::Cast)});

  R.add({"UNOP-NOT-BOOL", JudgKind::UnOpJ, 5,
         [UOpIs](Engine &E, const Judgment &J) {
           return UOpIs(J, UnOpKind::LogicalNot) &&
                  peel(E.resolveTy(J.T1))->K == TypeKind::Bool;
         },
         [](Engine &E, const Judgment &J) -> GoalRef {
           TypeRef T = stripC(E, J.T1);
           TermRef Phi = T->Refn ? E.resolve(mkNot(T->Refn)) : nullptr;
           if (!Phi) {
             E.fail("negation of a boolean without a refinement", J.Loc);
             return nullptr;
           }
           return J.KVal(mkIte(Phi, mkNat(1), mkNat(0)),
                         tyBool(caesium::intI32(), Phi));
         },
         RuleKey::onOp(UnOpKind::LogicalNot)});

  R.add({"UNOP-NOT-INT", JudgKind::UnOpJ, 0,
         [UOpIs](Engine &E, const Judgment &J) {
           return UOpIs(J, UnOpKind::LogicalNot) &&
                  peel(E.resolveTy(J.T1))->K == TypeKind::Int;
         },
         [](Engine &E, const Judgment &J) -> GoalRef {
           TermRef N = intTermOf(E, J.T1);
           if (!N)
             return nullptr;
           TermRef Phi = E.resolve(mkEq(N, mkNat(0)));
           return J.KVal(mkIte(Phi, mkNat(1), mkNat(0)),
                         tyBool(caesium::intI32(), Phi));
         },
         RuleKey::onOp(UnOpKind::LogicalNot)});

  R.add({"UNOP-NEG", JudgKind::UnOpJ, 0,
         [UOpIs](Engine &E, const Judgment &J) {
           return UOpIs(J, UnOpKind::Neg) && isIntLike(E.resolveTy(J.T1));
         },
         [](Engine &E, const Judgment &J) -> GoalRef {
           TermRef N = intTermOf(E, J.T1);
           if (!N)
             return nullptr;
           TermRef V = E.resolve(mkSub(mkInt(0), N));
           return gStar(rangeConds(J.Ity, V), J.KVal(V, tyInt(J.Ity, V)));
         },
         RuleKey::onOp(UnOpKind::Neg)});
}

//===----------------------------------------------------------------------===//
// Call rule
//===----------------------------------------------------------------------===//

/// Subsumes the arguments left to right, proves the precondition, then
/// (inside a fresh scope for the callee's postcondition existentials)
/// assumes the ensures clause and continues with the returned value. A free
/// recursive function so the goal tree carries no closure cycles.
static GoalRef callSpecChain(
    Engine *EP, std::shared_ptr<const FnSpec> S,
    std::shared_ptr<std::map<std::string, TermRef>> Subst,
    std::shared_ptr<std::vector<std::pair<TermRef, TypeRef>>> Args,
    rcc::SourceLoc Loc, std::function<GoalRef(TermRef, TypeRef)> KVal,
    size_t I) {
  Engine &E = *EP;
  if (I == Args->size()) {
    ResList Pre = substResMap(S->Requires, *Subst);
    // Postcondition: existentials become fresh universals for the caller.
    auto Subst2 = std::make_shared<std::map<std::string, TermRef>>(*Subst);
    for (const auto &[N, Srt] : S->RetExists)
      (*Subst2)[N] = E.freshUniversal(N, Srt);
    ResList Post = substResMap(S->Ensures, *Subst2);
    TypeRef Ret = S->Ret ? substTypeMap(S->Ret, *Subst2) : tyAny(mkNat(0));
    // The returned value: the refinement when the return type pins it
    // down, otherwise a fresh symbol.
    TermRef V;
    TypeRef RP = peel(Ret);
    if ((RP->K == TypeKind::Int || RP->K == TypeKind::Own) && RP->Refn)
      V = RP->Refn;
    else if (RP->K == TypeKind::Own || RP->K == TypeKind::Optional ||
             RP->K == TypeKind::Null || RP->K == TypeKind::Named)
      V = E.freshUniversal("ret", Sort::Loc);
    else
      V = E.freshUniversal("ret", Sort::Nat);
    if (RP->K == TypeKind::Own && !RP->Refn)
      Ret = withRefn(RP, V);
    return gStar(Pre, gWand(Post, KVal(V, Ret)));
  }
  TypeRef Want = substTypeMap(S->Args[I], *Subst);
  return mkSubsumeV(
      (*Args)[I].first, (*Args)[I].second, Want,
      callSpecChain(EP, S, Subst, Args, Loc, KVal, I + 1), Loc);
}

static void registerCallRules(RuleRegistry &R) {
  R.add({"T-CALL", JudgKind::CallJ, 0,
         [](Engine &E, const Judgment &J) {
           return peel(E.resolveTy(J.T1))->K == TypeKind::FnPtr;
         },
         [](Engine &E, const Judgment &J) -> GoalRef {
           TypeRef TF = stripC(E, J.T1);
           std::shared_ptr<const FnSpec> S = TF->Spec;
           if (J.Args.size() != S->Args.size()) {
             E.fail("call to '" + S->Name + "' with " +
                        std::to_string(J.Args.size()) + " arguments, spec "
                        "has " +
                        std::to_string(S->Args.size()),
                    J.Loc);
             return nullptr;
           }
           // Universally quantified spec parameters become sealed evars
           // (instantiated while checking the arguments, Section 5).
           auto Subst = std::make_shared<std::map<std::string, TermRef>>();
           for (const auto &[N, Srt] : S->Params)
             (*Subst)[N] = E.freshEvar(N, Srt);
           auto Args = std::make_shared<
               std::vector<std::pair<TermRef, TypeRef>>>(J.Args);
           return callSpecChain(&E, S, Subst, Args, J.Loc, J.KVal, 0);
         },
         RuleKey::onTy({TypeKind::FnPtr})});
}

namespace rcc::refinedc {
void registerOpRules(lithium::RuleRegistry &R) {
  registerBinOpRules(R);
  registerUnOpRules(R);
  registerCallRules(R);
}
} // namespace rcc::refinedc
