//===- Checker.h - The RefinedC verification driver -------------*- C++ -*-===//
//
// Part of RefinedC++, a C++ reproduction of the RefinedC verifier (PLDI'21).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Drives verification (Figure 2, steps B and C): builds the specification
/// environment from the front end's annotation tables (named types from
/// struct annotations, function specs, loop invariants, lemmas, enabled
/// solvers), seeds the Lithium engine with the function's initial contexts
/// (argument atoms, local slots, requires clause), runs the proof search on
/// the entry block, and then checks each loop-invariant cut point once.
///
//===----------------------------------------------------------------------===//

#ifndef RCC_REFINEDC_CHECKER_H
#define RCC_REFINEDC_CHECKER_H

#include "frontend/Frontend.h"
#include "lithium/Engine.h"
#include "refinedc/Result.h"
#include "refinedc/SpecParser.h"
#include "store/ResultStore.h"

#include <atomic>
#include <memory>
#include <optional>

namespace rcc::refinedc {

/// A parsed loop invariant (rc::exists / rc::inv_vars / rc::constraints).
struct LoopInv {
  std::vector<std::pair<std::string, pure::Sort>> ExVars;
  std::vector<std::pair<std::string, TypeRef>> InvVars; ///< slot -> type
  std::vector<TermRef> Constraints;
};

/// Verification context handed to the typing rules through the engine.
struct VerifyCtx : lithium::VerifyCtxBase {
  const front::AnnotatedProgram *AP = nullptr;
  const TypeEnv *Env = nullptr;
  const caesium::Function *Fn = nullptr;
  const front::FnInfo *FI = nullptr;
  std::shared_ptr<const FnSpec> Spec;
  std::vector<LoopInv> LoopInvs; ///< indexed by Block::AnnotId

  /// Pure facts available at every cut point (requires + argument-type
  /// constraints). Γ is unrestricted, so these survive loop boundaries.
  std::vector<TermRef> Gamma0;
  /// Atoms of annotated globals (persistent; re-seeded at cut points).
  ResList GlobalAtoms;

  /// Blocks with invariants that still need a separate check.
  std::vector<unsigned> PendingBlocks;
  std::set<unsigned> QueuedBlocks;
  /// Inline-visit counters: re-entering an unannotated block too often means
  /// a loop without an invariant annotation.
  std::map<unsigned, unsigned> InlineCount;

  void queueBlock(unsigned B) {
    if (QueuedBlocks.insert(B).second)
      PendingBlocks.push_back(B);
  }
};

/// Whole-program verification driver.
///
/// Concurrency model (see DESIGN.md for the full discussion): after
/// buildEnv() succeeds, a Checker is an immutable verification *session* —
/// the type environment, rule registry, global atoms, and solver
/// configuration are shared read-only by all verification jobs, which is
/// why verifyFunction is const. Each job gets its own PureSolver (copied
/// from the session's template so user-registered simplification rules
/// carry over), EvarEnv, Engine, and DiagnosticEngine, so jobs never share
/// mutable state and per-function results are byte-identical regardless of
/// Jobs. Session-level results are memoized in a tiered result store (see
/// src/store and DESIGN.md, "Persistent verification store"): an always-on
/// in-memory tier keyed by a content hash of the function body, its
/// annotations, its callees' specs, and the spec-environment fingerprint —
/// so re-running verifyAll after nothing changed is O(1) per function —
/// plus an optional on-disk tier (VerifyOptions::CacheDir) whose entries
/// survive the process and are replayed through the independent
/// ProofChecker before being trusted.
class Checker {
public:
  Checker(const front::AnnotatedProgram &AP, rcc::DiagnosticEngine &Diags);

  /// Recursive named types form intentional shared_ptr cycles
  /// (NamedTypeDef::Body mentions the definition). The destructor breaks
  /// them so the whole type graph is reclaimed; unfolding named types is
  /// therefore only valid while the owning Checker is alive.
  ~Checker();

  /// Builds the type environment from annotations. False on spec errors.
  bool buildEnv();

  /// Adopts externally-owned store tiers in place of the session-owned
  /// ones. This is how the verification daemon (src/daemon) keeps results
  /// warm across *revisions*: each revision compiles a fresh Checker
  /// session, but all sessions share one in-memory L1 (and optionally one
  /// disk L2), and the content-hash keys — which fold in the function
  /// body, callee specs, and the spec-environment fingerprint — guarantee
  /// a stale entry can only miss. \p SharedL1 must be a trusted in-memory
  /// tier (nullptr keeps a fresh private one); \p SharedL2 may be null.
  /// Once adopted, VerifyOptions::CacheDir is ignored (the tiers are
  /// fixed); VerifyOptions::NoCache still bypasses probes per run.
  void adoptStoreTiers(std::shared_ptr<store::MemoryResultStore> SharedL1,
                       std::shared_ptr<store::DiskResultStore> SharedL2);

  /// Generalization of adoptStoreTiers to the uniform tier stack: the
  /// trusted in-memory L1 plus any number of *untrusted* persistent tiers
  /// in probe order (private L2 first, then the fleet's shared L3). Every
  /// hit in an untrusted tier is replayed through the ProofChecker before
  /// being trusted (or hash-trusted under --no-recheck), and validated
  /// results are promoted into every tier probed earlier. This is how
  /// fleet workers compose [private L1, shared L3] and the daemon composes
  /// [shared L1, private L2, shared L3] (DESIGN.md, "Fleet & protocol v2").
  void
  adoptTierStack(std::shared_ptr<store::MemoryResultStore> SharedL1,
                 std::vector<std::shared_ptr<store::ResultStore>> Untrusted);

  /// Verifies one function against its annotations. Thread-safe: shares
  /// only immutable session state, and bypasses the result store.
  FnResult verifyFunction(const std::string &Name,
                          const VerifyOptions &Opts) const;

  /// Verifies the named functions (in the given order) with Opts.Jobs
  /// concurrent jobs; each job consults the session result store at job
  /// start and publishes at job end.
  ProgramResult verifyFunctions(const std::vector<std::string> &Names,
                                const VerifyOptions &Opts);

  /// Verifies every annotated function with a body (plus trusted
  /// prototypes' specs); returns the aggregate result.
  ProgramResult verifyAll(const VerifyOptions &Opts);

  const TypeEnv &env() const { return Env; }
  const lithium::RuleRegistry &rules() const { return Rules; }
  const pure::PureSolver &solver() const { return SolverProto; }

  /// Selects how rule lookups assemble candidates (Indexed by default; see
  /// RuleRegistry::DispatchMode). Every mode selects the same rules — the
  /// dispatch-equivalence property test runs the corpus in CrossCheck to
  /// prove it — so no cache invalidation is needed. Also settable via the
  /// RCC_DISPATCH environment variable ("linear" / "crosscheck").
  void setDispatchMode(lithium::RuleRegistry::DispatchMode M) {
    Rules.setMode(M);
  }

  /// Mutable access to the session environment / solver template for
  /// user extensions (ExtensibilityTest registers simplification rules
  /// this way). Mutating either invalidates the in-memory result tier
  /// (persistent entries self-invalidate through their keys).
  TypeEnv &env() {
    invalidateCache();
    return Env;
  }
  pure::PureSolver &solver() {
    invalidateCache();
    return SolverProto;
  }

  /// Registered lemma line counts (Figure 7 "Pure" column).
  unsigned pureLines() const { return PureLines; }

private:
  bool buildNamedTypes();
  bool buildFnSpecs();
  bool buildGlobals();
  std::optional<LoopInv> parseLoopInv(const std::vector<front::RcAnnot> &As,
                                      const SpecScope &Scope,
                                      rcc::DiagnosticEngine &Diags) const;
  /// Content hash of one function's verification problem under Opts; 0 is
  /// never returned (reserved for "uncacheable").
  uint64_t fnContentHash(const std::string &Name,
                         const VerifyOptions &Opts) const;
  void invalidateCache();

  /// (Re)builds the tiered store for this run: the session L1 always, plus
  /// a disk L2 when Opts.CacheDir is set and a shared L3 when
  /// Opts.SharedDir is set (each reused across runs on the same directory).
  void configureStore(const VerifyOptions &Opts);

  /// Per-run replay accounting, aggregated across jobs. Indexed by tier
  /// position in the stack (tier 0 — trusted L1 — never replays).
  struct RunStoreStats {
    static constexpr size_t kMaxTiers = 8;
    std::atomic<uint64_t> ReplayUs[kMaxTiers] = {};
    std::atomic<uint64_t> Replays[kMaxTiers] = {};
    std::atomic<uint64_t> ReplayFailures[kMaxTiers] = {};
  };

  /// Job-start store probe: on a hit in an untrusted (disk) tier the entry
  /// is replayed through the ProofChecker before being surfaced (or hash-
  /// trusted when Opts.Recheck is off) and promoted into L1. Returns false
  /// — a miss — when there is no usable entry; \p HitTier reports the tier
  /// on success.
  bool probeStore(const std::string &Name, uint64_t Key,
                  const VerifyOptions &Opts, FnResult &Out, size_t &HitTier,
                  RunStoreStats &RS);

  const front::AnnotatedProgram &AP;
  rcc::DiagnosticEngine &Diags;
  TypeEnv Env;
  lithium::RuleRegistry Rules;
  /// Session solver template: per-job solvers are copies of this, so its
  /// configuration (user simplification rules) is shared read-only.
  pure::PureSolver SolverProto;
  ResList GlobalAtoms;
  unsigned PureLines = 0;

  /// Spec-environment fingerprint (struct/typedef/global annotations),
  /// computed lazily; folded into every function's content hash as the
  /// conservative "named-type closure" component.
  mutable uint64_t EnvFingerprint = 0;
  mutable bool EnvFingerprintValid = false;

  /// The session result store, composed as a uniform tier stack. L1
  /// (in-memory, trusted) always exists; L2 (private on-disk) and L3 (the
  /// fleet's shared artifact store) — both untrusted until replayed — are
  /// attached by configureStore when a run sets VerifyOptions::CacheDir /
  /// SharedDir, or adopted wholesale by adoptTierStack. Jobs only touch
  /// the store at job start/end; all tiers are thread-safe.
  std::shared_ptr<store::MemoryResultStore> L1;
  std::shared_ptr<store::DiskResultStore> L2;
  std::shared_ptr<store::DiskResultStore> L3;
  /// Adopted untrusted tiers (adoptTierStack); empty when the session owns
  /// its composition.
  std::vector<std::shared_ptr<store::ResultStore>> AdoptedUntrusted;
  store::TieredResultStore Store;
  /// True once adoptStoreTiers ran: the tier composition is owned by the
  /// caller (the daemon) and configureStore must not rebuild it.
  bool ExternalTiers = false;
};

/// Registers the RefinedC standard library of typing rules (Section 6 and
/// the supporting rules; the paper's library has ~200 rules, keyed so that
/// at most one applies to any judgment).
void registerStandardRules(lithium::RuleRegistry &R);

} // namespace rcc::refinedc

#endif // RCC_REFINEDC_CHECKER_H
