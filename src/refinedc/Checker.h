//===- Checker.h - The RefinedC verification driver -------------*- C++ -*-===//
//
// Part of RefinedC++, a C++ reproduction of the RefinedC verifier (PLDI'21).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Drives verification (Figure 2, steps B and C): builds the specification
/// environment from the front end's annotation tables (named types from
/// struct annotations, function specs, loop invariants, lemmas, enabled
/// solvers), seeds the Lithium engine with the function's initial contexts
/// (argument atoms, local slots, requires clause), runs the proof search on
/// the entry block, and then checks each loop-invariant cut point once.
///
//===----------------------------------------------------------------------===//

#ifndef RCC_REFINEDC_CHECKER_H
#define RCC_REFINEDC_CHECKER_H

#include "frontend/Frontend.h"
#include "lithium/Engine.h"
#include "refinedc/SpecParser.h"

#include <optional>

namespace rcc::refinedc {

/// A parsed loop invariant (rc::exists / rc::inv_vars / rc::constraints).
struct LoopInv {
  std::vector<std::pair<std::string, pure::Sort>> ExVars;
  std::vector<std::pair<std::string, TypeRef>> InvVars; ///< slot -> type
  std::vector<TermRef> Constraints;
};

/// Verification context handed to the typing rules through the engine.
struct VerifyCtx : lithium::VerifyCtxBase {
  const front::AnnotatedProgram *AP = nullptr;
  const TypeEnv *Env = nullptr;
  const caesium::Function *Fn = nullptr;
  const front::FnInfo *FI = nullptr;
  std::shared_ptr<const FnSpec> Spec;
  std::vector<LoopInv> LoopInvs; ///< indexed by Block::AnnotId

  /// Pure facts available at every cut point (requires + argument-type
  /// constraints). Γ is unrestricted, so these survive loop boundaries.
  std::vector<TermRef> Gamma0;
  /// Atoms of annotated globals (persistent; re-seeded at cut points).
  ResList GlobalAtoms;

  /// Blocks with invariants that still need a separate check.
  std::vector<unsigned> PendingBlocks;
  std::set<unsigned> QueuedBlocks;
  /// Inline-visit counters: re-entering an unannotated block too often means
  /// a loop without an invariant annotation.
  std::map<unsigned, unsigned> InlineCount;

  void queueBlock(unsigned B) {
    if (QueuedBlocks.insert(B).second)
      PendingBlocks.push_back(B);
  }
};

/// Result of verifying one function.
struct FnResult {
  std::string Name;
  bool Verified = false;
  bool Trusted = false; ///< rc::trust_me
  std::string Error;
  rcc::SourceLoc ErrorLoc;
  std::vector<std::string> ErrorContext;
  lithium::EngineStats Stats;
  lithium::Derivation Deriv;
  unsigned EvarsInstantiated = 0;
  unsigned BacktrackedSteps = 0; ///< nonzero only in the ablation baseline

  /// Renders the Section 2.1-style error message.
  std::string renderError(const std::string &Source) const;
};

/// Whole-program verification driver.
class Checker {
public:
  Checker(const front::AnnotatedProgram &AP, rcc::DiagnosticEngine &Diags);

  /// Recursive named types form intentional shared_ptr cycles
  /// (NamedTypeDef::Body mentions the definition). The destructor breaks
  /// them so the whole type graph is reclaimed; unfolding named types is
  /// therefore only valid while the owning Checker is alive.
  ~Checker();

  /// Builds the type environment from annotations. False on spec errors.
  bool buildEnv();

  /// Verifies one function against its annotations.
  FnResult verifyFunction(const std::string &Name);

  /// Verifies every annotated function; returns per-function results.
  std::vector<FnResult> verifyAll();

  TypeEnv &env() { return Env; }
  const lithium::RuleRegistry &rules() const { return Rules; }
  pure::PureSolver &solver() { return Solver; }

  /// Ablation: run the engines in naive-backtracking mode (see Engine).
  bool Backtracking = false;

  /// Registered lemma line counts (Figure 7 "Pure" column).
  unsigned pureLines() const { return PureLines; }

private:
  bool buildNamedTypes();
  bool buildFnSpecs();
  bool buildGlobals();
  std::optional<LoopInv> parseLoopInv(const std::vector<front::RcAnnot> &As,
                                      const SpecScope &Scope);

  const front::AnnotatedProgram &AP;
  rcc::DiagnosticEngine &Diags;
  TypeEnv Env;
  lithium::RuleRegistry Rules;
  pure::PureSolver Solver;
  ResList GlobalAtoms;
  unsigned PureLines = 0;
};

/// Registers the RefinedC standard library of typing rules (Section 6 and
/// the supporting rules; the paper's library has ~200 rules, keyed so that
/// at most one applies to any judgment).
void registerStandardRules(lithium::RuleRegistry &R);

} // namespace rcc::refinedc

#endif // RCC_REFINEDC_CHECKER_H
