//===- Checker.h - The RefinedC verification driver -------------*- C++ -*-===//
//
// Part of RefinedC++, a C++ reproduction of the RefinedC verifier (PLDI'21).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Drives verification (Figure 2, steps B and C): builds the specification
/// environment from the front end's annotation tables (named types from
/// struct annotations, function specs, loop invariants, lemmas, enabled
/// solvers), seeds the Lithium engine with the function's initial contexts
/// (argument atoms, local slots, requires clause), runs the proof search on
/// the entry block, and then checks each loop-invariant cut point once.
///
//===----------------------------------------------------------------------===//

#ifndef RCC_REFINEDC_CHECKER_H
#define RCC_REFINEDC_CHECKER_H

#include "frontend/Frontend.h"
#include "lithium/Engine.h"
#include "refinedc/SpecParser.h"

#include <mutex>
#include <optional>
#include <unordered_map>

namespace rcc::refinedc {

/// A parsed loop invariant (rc::exists / rc::inv_vars / rc::constraints).
struct LoopInv {
  std::vector<std::pair<std::string, pure::Sort>> ExVars;
  std::vector<std::pair<std::string, TypeRef>> InvVars; ///< slot -> type
  std::vector<TermRef> Constraints;
};

/// Verification context handed to the typing rules through the engine.
struct VerifyCtx : lithium::VerifyCtxBase {
  const front::AnnotatedProgram *AP = nullptr;
  const TypeEnv *Env = nullptr;
  const caesium::Function *Fn = nullptr;
  const front::FnInfo *FI = nullptr;
  std::shared_ptr<const FnSpec> Spec;
  std::vector<LoopInv> LoopInvs; ///< indexed by Block::AnnotId

  /// Pure facts available at every cut point (requires + argument-type
  /// constraints). Γ is unrestricted, so these survive loop boundaries.
  std::vector<TermRef> Gamma0;
  /// Atoms of annotated globals (persistent; re-seeded at cut points).
  ResList GlobalAtoms;

  /// Blocks with invariants that still need a separate check.
  std::vector<unsigned> PendingBlocks;
  std::set<unsigned> QueuedBlocks;
  /// Inline-visit counters: re-entering an unannotated block too often means
  /// a loop without an invariant annotation.
  std::map<unsigned, unsigned> InlineCount;

  void queueBlock(unsigned B) {
    if (QueuedBlocks.insert(B).second)
      PendingBlocks.push_back(B);
  }
};

/// Per-session verification options (the public knobs of the driver API;
/// everything else about a Checker is fixed once buildEnv() ran).
struct VerifyOptions {
  /// Replay every successful derivation through the independent
  /// ProofChecker and record the outcome in FnResult::RecheckOk.
  bool Recheck = false;
  /// Ablation: run the engines in naive-backtracking mode (see Engine).
  bool Backtracking = false;
  /// Number of concurrent verification jobs for verifyAll /
  /// verifyFunctions. 1 = serial; 0 = one job per hardware core. Results
  /// are byte-identical regardless of the job count (see DESIGN.md,
  /// "Concurrency model").
  unsigned Jobs = 1;
  /// Engine goal-step budget override (0 = the engine default; the
  /// backtracking baseline defaults to a tight 20k budget).
  unsigned MaxSteps = 0;
  /// Keep the recorded Derivation in each FnResult. Turning this off saves
  /// memory on large programs; rechecking still works (the derivation is
  /// collected, replayed, and then dropped).
  bool CollectDerivation = true;

  // --- Observability (src/trace; DESIGN.md "Observability") ---
  /// Trace session to record into. When null but TraceFile/Profile is set,
  /// verifyFunctions creates an internal session for the run. Callers that
  /// want frontend spans too create the session themselves (verify_tool
  /// does) and handle the export.
  trace::TraceSession *Trace = nullptr;
  /// Write the Chrome trace-event JSON here after the run (internal-session
  /// mode; ignored when empty).
  std::string TraceFile;
  /// Fill ProgramResult::ProfileReport with the human-readable profile.
  bool Profile = false;
  /// Internal-session mode: create the session deterministic, so exported
  /// counters and the profile are byte-identical across Jobs (durations
  /// zeroed, rules ranked by application count).
  bool DeterministicTrace = false;
};

/// Result of verifying one function.
struct FnResult {
  std::string Name;
  bool Verified = false;
  bool Trusted = false; ///< rc::trust_me
  std::string Error;
  rcc::SourceLoc ErrorLoc;
  std::vector<std::string> ErrorContext;
  lithium::EngineStats Stats;
  lithium::Derivation Deriv;
  unsigned EvarsInstantiated = 0;
  unsigned BacktrackedSteps = 0; ///< nonzero only in the ablation baseline
  bool Rechecked = false;  ///< the derivation was replayed (Recheck option)
  bool RecheckOk = false;  ///< replay verdict; meaningful when Rechecked
  bool CacheHit = false;   ///< served from the session's result cache
  double WallMillis = 0.0; ///< wall time of this function's check (0 when
                           ///< the result came from the cache)

  /// Renders the Section 2.1-style error message.
  std::string renderError(const std::string &Source) const;
};

/// Aggregate result of a whole-program verification run.
struct ProgramResult {
  std::vector<FnResult> Fns;
  double WallMillis = 0.0; ///< wall time of the run (all jobs)
  unsigned JobsUsed = 1;   ///< resolved job count
  unsigned CacheHits = 0;
  unsigned CacheMisses = 0;
  /// Session metrics snapshot as a JSON object (empty when the run was not
  /// traced). Sourced from the MetricsRegistry; the bench artifacts
  /// (BENCH_*.json) embed it verbatim.
  std::string Metrics;
  /// Human-readable profile (VerifyOptions::Profile; empty otherwise).
  std::string ProfileReport;

  bool allVerified() const {
    for (const FnResult &R : Fns)
      if (!R.Verified)
        return false;
    return true;
  }
  /// True if every function that was rechecked passed the replay.
  bool allRechecksOk() const {
    for (const FnResult &R : Fns)
      if (R.Rechecked && !R.RecheckOk)
        return false;
    return true;
  }
  const FnResult *fn(const std::string &Name) const {
    for (const FnResult &R : Fns)
      if (R.Name == Name)
        return &R;
    return nullptr;
  }
  /// Machine-readable rendering (verify_tool --format=json): per-function
  /// name, verdict, error + location, and engine statistics, plus the
  /// run-level wall time and cache counters.
  std::string toJson() const;
};

/// Whole-program verification driver.
///
/// Concurrency model (see DESIGN.md for the full discussion): after
/// buildEnv() succeeds, a Checker is an immutable verification *session* —
/// the type environment, rule registry, global atoms, and solver
/// configuration are shared read-only by all verification jobs, which is
/// why verifyFunction is const. Each job gets its own PureSolver (copied
/// from the session's template so user-registered simplification rules
/// carry over), EvarEnv, Engine, and DiagnosticEngine, so jobs never share
/// mutable state and per-function results are byte-identical regardless of
/// Jobs. Session-level results are memoized in a content-hash cache keyed
/// by the function body, its annotations, its callees' specs, and the
/// spec-environment fingerprint, so re-running verifyAll after nothing
/// changed is O(1) per function.
class Checker {
public:
  Checker(const front::AnnotatedProgram &AP, rcc::DiagnosticEngine &Diags);

  /// Recursive named types form intentional shared_ptr cycles
  /// (NamedTypeDef::Body mentions the definition). The destructor breaks
  /// them so the whole type graph is reclaimed; unfolding named types is
  /// therefore only valid while the owning Checker is alive.
  ~Checker();

  /// Builds the type environment from annotations. False on spec errors.
  bool buildEnv();

  /// Verifies one function against its annotations. Thread-safe: shares
  /// only immutable session state, and bypasses the result cache.
  FnResult verifyFunction(const std::string &Name,
                          const VerifyOptions &Opts) const;

  /// Verifies the named functions (in the given order) with Opts.Jobs
  /// concurrent jobs, consulting the session result cache.
  ProgramResult verifyFunctions(const std::vector<std::string> &Names,
                                const VerifyOptions &Opts);

  /// Verifies every annotated function with a body (plus trusted
  /// prototypes' specs); returns the aggregate result.
  ProgramResult verifyAll(const VerifyOptions &Opts);

  // --- Deprecated pre-session API (PR 1). The VerifyOptions overloads
  // above replace these; the shims keep out-of-tree callers compiling.
  [[deprecated("pass VerifyOptions: verifyFunction(Name, {})")]]
  FnResult verifyFunction(const std::string &Name);
  [[deprecated("use verifyAll(VerifyOptions) and ProgramResult")]]
  std::vector<FnResult> verifyAll();
  /// Ablation flag of the old mutable-driver API.
  [[deprecated("use VerifyOptions::Backtracking")]]
  bool Backtracking = false;

  const TypeEnv &env() const { return Env; }
  const lithium::RuleRegistry &rules() const { return Rules; }
  const pure::PureSolver &solver() const { return SolverProto; }

  /// Mutable access to the session environment / solver template for
  /// user extensions (ExtensibilityTest registers simplification rules
  /// this way). Mutating either invalidates the result cache.
  TypeEnv &env() {
    invalidateCache();
    return Env;
  }
  pure::PureSolver &solver() {
    invalidateCache();
    return SolverProto;
  }

  /// Registered lemma line counts (Figure 7 "Pure" column).
  unsigned pureLines() const { return PureLines; }

private:
  bool buildNamedTypes();
  bool buildFnSpecs();
  bool buildGlobals();
  std::optional<LoopInv> parseLoopInv(const std::vector<front::RcAnnot> &As,
                                      const SpecScope &Scope,
                                      rcc::DiagnosticEngine &Diags) const;
  /// Content hash of one function's verification problem under Opts; 0 is
  /// never returned (reserved for "uncacheable").
  uint64_t fnContentHash(const std::string &Name,
                         const VerifyOptions &Opts) const;
  void invalidateCache();

  const front::AnnotatedProgram &AP;
  rcc::DiagnosticEngine &Diags;
  TypeEnv Env;
  lithium::RuleRegistry Rules;
  /// Session solver template: per-job solvers are copies of this, so its
  /// configuration (user simplification rules) is shared read-only.
  pure::PureSolver SolverProto;
  ResList GlobalAtoms;
  unsigned PureLines = 0;

  /// Spec-environment fingerprint (struct/typedef/global annotations),
  /// computed lazily; folded into every function's content hash as the
  /// conservative "named-type closure" component.
  mutable uint64_t EnvFingerprint = 0;
  mutable bool EnvFingerprintValid = false;

  /// Session result cache: function name -> (content hash, result).
  /// Guarded by CacheM; jobs only touch it at job start/end.
  std::unordered_map<std::string, std::pair<uint64_t, FnResult>> Cache;
  std::mutex CacheM;
};

/// Registers the RefinedC standard library of typing rules (Section 6 and
/// the supporting rules; the paper's library has ~200 rules, keyed so that
/// at most one applies to any judgment).
void registerStandardRules(lithium::RuleRegistry &R);

} // namespace rcc::refinedc

#endif // RCC_REFINEDC_CHECKER_H
