//===- SpecParser.h - Parser for the rc:: specification DSL ----*- C++ -*-===//
//
// Part of RefinedC++, a C++ reproduction of the RefinedC verifier (PLDI'21).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses the strings carried by `[[rc::...]]` annotations into pure terms
/// and RefinedC types. The syntax follows the paper (Figures 1 and 3):
///
///   parameters:   "a: nat", "s: {gmultiset nat}", "p: loc"
///   types:        "p @ &own<a @ mem_t>", "{n <= a} @ optional<...>, null>"
///   terms:        braces delimit term syntax: "{s = {[n]} (+) tail}"
///   atoms:        "own p : {…} @ mem_t" (rc::ensures / wand holes)
///
/// Unicode operators from the paper (≤ ≠ ∅ ⊎ ∈ ∀ →) are accepted alongside
/// ASCII spellings (<=, !=, {[]}, (+), in, forall, ->).
///
//===----------------------------------------------------------------------===//

#ifndef RCC_REFINEDC_SPECPARSER_H
#define RCC_REFINEDC_SPECPARSER_H

#include "refinedc/Types.h"
#include "support/Diagnostics.h"

#include <map>
#include <string>

namespace rcc::refinedc {

/// The specification-level environment: named types, named function specs,
/// and struct layouts (for sizeof and array element sizes).
struct TypeEnv {
  std::map<std::string, std::shared_ptr<NamedTypeDef>> Named;
  std::map<std::string, std::shared_ptr<FnSpec>> FnSpecs;
  std::map<std::string, const caesium::StructLayout *> Layouts;

  std::shared_ptr<NamedTypeDef> named(const std::string &N) const {
    auto It = Named.find(N);
    return It == Named.end() ? nullptr : It->second;
  }
};

/// Variable scope for spec parsing: name -> sort.
using SpecScope = std::map<std::string, pure::Sort>;

/// Parses "name: sort" (e.g. "a: nat", "s: {gmultiset nat}").
bool parseBinder(const std::string &S, std::string &Name, pure::Sort &Sort,
                 rcc::DiagnosticEngine &Diags, rcc::SourceLoc Loc);

class SpecParser {
public:
  SpecParser(std::string Text, const TypeEnv &Env, const SpecScope &Scope,
             rcc::DiagnosticEngine &Diags, rcc::SourceLoc Loc)
      : Text(std::move(Text)), Env(Env), Scope(Scope), Diags(Diags),
        Loc(Loc) {}

  /// Parses a complete type (consuming all input).
  TypeRef parseTypeFull();
  /// Parses a complete term.
  TermRef parseTermFull();
  /// Parses a spec atom: `own <loc> : <type>` or a type-free pure prop.
  bool parseAtomFull(ResAtom &Out);
  /// Parses "var: type" (rc::inv_vars).
  bool parseInvVarFull(std::string &Var, TypeRef &Ty);

  /// The `...` placeholder target used inside rc::ptr_type bodies.
  TypeRef SelfStructType;

  bool hadError() const { return HadError; }

private:
  // Lexing (on demand, over UTF-8 text).
  void skipWs();
  bool eat(const std::string &S);
  bool peekIs(const std::string &S);
  std::string ident();
  bool atIdent();
  void error(const std::string &Msg);

  // Terms.
  TermRef term();
  TermRef ternary();
  TermRef implication();
  TermRef disjunction();
  TermRef conjunction();
  TermRef comparison();
  TermRef additive();
  TermRef multiplicative();
  TermRef unary();
  TermRef primary();
  pure::Sort sortName();

  // Types.
  TypeRef type();
  TypeRef typeCore();
  TermRef refinement();
  caesium::IntType intTypeName();

  std::string Text;
  size_t Pos = 0;
  const TypeEnv &Env;
  SpecScope Scope;
  rcc::DiagnosticEngine &Diags;
  rcc::SourceLoc Loc;
  bool HadError = false;
  /// Suppresses diagnostics during speculative parses (refinement '@' ...).
  bool Quiet = false;
  /// Inside `<...>` type brackets, bare '<'/'>' close the bracket instead of
  /// acting as comparisons; braces re-enable them.
  bool NoAngle = false;
};

} // namespace rcc::refinedc

#endif // RCC_REFINEDC_SPECPARSER_H
