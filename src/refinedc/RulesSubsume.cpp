//===- RulesSubsume.cpp - Subsumption (subtyping) rules -------------------===//
//
// Part of RefinedC++, a C++ reproduction of the RefinedC verifier (PLDI'21).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The subsumption rules `A1 <: A2 {G}` of Section 5/6: value subsumption
/// (SubsumeV) and location subsumption (SubsumeL). They decompose structural
/// types, unfold named types (Section 2.2: unfolding is automatic), open
/// existentials into evars (right) or universals (left), move constraints
/// between side conditions and the context, introduce and apply magic wands,
/// recompose structs/padding from split field atoms, and split/merge
/// uninitialized blocks. S-NULL and S-OWN from Figure 6 live here.
///
//===----------------------------------------------------------------------===//

#include "refinedc/RulesCommon.h"

using namespace rcc;
using namespace rcc::refinedc;
using namespace rcc::refinedc::rules;
using namespace rcc::lithium;
using namespace rcc::pure;

namespace {

TypeKind kind1(Engine &E, const Judgment &J) {
  return peel(E.resolveTy(J.T1))->K;
}
TypeKind kind2(Engine &E, const Judgment &J) {
  return peel(E.resolveTy(J.T2))->K;
}

/// Value-level equality side condition between two refinements (nullptr
/// refinement on the target means "unconstrained").
GoalRef refnEqGoal(TermRef Actual, TermRef Want, GoalRef K) {
  if (!Want || Actual == Want)
    return K;
  ResList H = {ResAtom::pure(mkEq(Actual, Want))};
  return gStar(std::move(H), K);
}

/// Shared subsumption cases that behave identically for values and
/// locations. \p IsLoc selects which judgment kind recursive goals use.
void registerShared(RuleRegistry &R, JudgKind JK, const char *Suffix) {
  bool IsLoc = JK == JudgKind::SubsumeL;
  auto Recur = [IsLoc](TermRef V, TypeRef T1, TypeRef T2, GoalRef K,
                       rcc::SourceLoc Loc) {
    return IsLoc ? mkSubsumeL(V, T1, T2, K, Loc)
                 : mkSubsumeV(V, T1, T2, K, Loc);
  };
  auto Name = [Suffix](const char *Base) {
    return std::string(Base) + Suffix;
  };

  // Reflexivity: structurally equal types need no work.
  R.add({Name("S-REFL"), JK, 100,
         [](Engine &E, const Judgment &J) {
           return typeEqual(E.resolveTy(J.T1), E.resolveTy(J.T2));
         },
         [](Engine &E, const Judgment &J) -> GoalRef { return J.KGoal; },
         RuleKey::diagonal()});

  // Constraints: on the left they are assumptions, on the right side
  // conditions.
  R.add({Name("S-CONSTR-L"), JK, 95,
         [](Engine &E, const Judgment &J) {
           return E.resolveTy(J.T1)->K == TypeKind::Constraint;
         },
         [Recur](Engine &E, const Judgment &J) -> GoalRef {
           TypeRef T1 = E.resolveTy(J.T1);
           return gWand({ResAtom::pure(T1->Refn)},
                        Recur(J.V1, T1->Children[0], J.T2, J.KGoal, J.Loc));
         }});
  R.add({Name("S-CONSTR-R"), JK, 94,
         [](Engine &E, const Judgment &J) {
           return E.resolveTy(J.T2)->K == TypeKind::Constraint;
         },
         [Recur](Engine &E, const Judgment &J) -> GoalRef {
           TypeRef T2 = E.resolveTy(J.T2);
           return Recur(J.V1, J.T1, T2->Children[0],
                        gStar({ResAtom::pure(T2->Refn)}, J.KGoal), J.Loc);
         }});

  // Existentials: left opens to a universal, right to a sealed evar.
  R.add({Name("S-EXISTS-L"), JK, 93,
         [](Engine &E, const Judgment &J) {
           return E.resolveTy(J.T1)->K == TypeKind::Exists;
         },
         [Recur](Engine &E, const Judgment &J) -> GoalRef {
           TypeRef T1 = E.resolveTy(J.T1);
           TermRef X = E.freshUniversal(T1->Binder, T1->BinderSort);
           return Recur(J.V1, substTypeVar(T1->Children[0], T1->Binder, X),
                        J.T2, J.KGoal, J.Loc);
         },
         RuleKey::onPair({TypeKind::Exists}, {})});
  R.add({Name("S-EXISTS-R"), JK, 92,
         [](Engine &E, const Judgment &J) {
           return E.resolveTy(J.T2)->K == TypeKind::Exists;
         },
         [Recur](Engine &E, const Judgment &J) -> GoalRef {
           TypeRef T2 = E.resolveTy(J.T2);
           TermRef X = E.freshEvar(T2->Binder, T2->BinderSort);
           return Recur(J.V1, J.T1,
                        substTypeVar(T2->Children[0], T2->Binder, X),
                        J.KGoal, J.Loc);
         },
         RuleKey::onPair({}, {TypeKind::Exists})});

  // Named types: same definition reduces to refinement equality; otherwise
  // unfold (recursive types unfold on demand, Section 2.2).
  R.add({Name("S-NAMED-SAME"), JK, 91,
         [](Engine &E, const Judgment &J) {
           TypeRef A = peel(E.resolveTy(J.T1)), B = peel(E.resolveTy(J.T2));
           return A->K == TypeKind::Named && B->K == TypeKind::Named &&
                  A->Def == B->Def;
         },
         [](Engine &E, const Judgment &J) -> GoalRef {
           TypeRef A = stripC(E, J.T1), B = stripC(E, J.T2);
           return refnEqGoal(A->Refn, B->Refn, J.KGoal);
         },
         RuleKey::onPair({TypeKind::Named}, {TypeKind::Named})});
  // Unfolding is deliberately *below* the structural recomposition rules
  // (SL-TO-STRUCT/PADDED), so that recursive occurrences are cut at
  // S-NAMED-SAME instead of diverging through their unfoldings.
  R.add({Name("S-NAMED-L"), JK, 64,
         [](Engine &E, const Judgment &J) {
           TypeRef A = peel(E.resolveTy(J.T1)), B = peel(E.resolveTy(J.T2));
           return A->K == TypeKind::Named &&
                  !(B->K == TypeKind::Named && A->Def == B->Def);
         },
         [Recur](Engine &E, const Judgment &J) -> GoalRef {
           TypeRef A = stripC(E, J.T1);
           return Recur(J.V1, unfoldNamed(*A), J.T2, J.KGoal, J.Loc);
         },
         RuleKey::onPair({TypeKind::Named}, {})});
  R.add({Name("S-NAMED-R"), JK, 65,
         [](Engine &E, const Judgment &J) {
           TypeRef A = peel(E.resolveTy(J.T1)), B = peel(E.resolveTy(J.T2));
           return B->K == TypeKind::Named &&
                  !(A->K == TypeKind::Named && A->Def == B->Def);
         },
         [Recur](Engine &E, const Judgment &J) -> GoalRef {
           TypeRef B = stripC(E, J.T2);
           return Recur(J.V1, J.T1, unfoldNamed(*B), J.KGoal, J.Loc);
         },
         RuleKey::onPair({}, {TypeKind::Named})});

  // Integers and booleans.
  R.add({Name("S-INT"), JK, 50,
         [](Engine &E, const Judgment &J) {
           return kind1(E, J) == TypeKind::Int &&
                  kind2(E, J) == TypeKind::Int;
         },
         [](Engine &E, const Judgment &J) -> GoalRef {
           TypeRef A = stripC(E, J.T1), B = stripC(E, J.T2);
           if (!(A->Ity == B->Ity)) {
             E.fail("integer type mismatch: " + A->str() + " vs " + B->str(),
                    J.Loc);
             return nullptr;
           }
           if (!A->Refn && B->Refn) {
             E.fail("cannot prove a refinement for an unrefined integer",
                    J.Loc);
             return nullptr;
           }
           return refnEqGoal(A->Refn, B->Refn, J.KGoal);
         },
         RuleKey::onPair({TypeKind::Int}, {TypeKind::Int})});
  R.add({Name("S-BOOL"), JK, 50,
         [](Engine &E, const Judgment &J) {
           return kind1(E, J) == TypeKind::Bool &&
                  kind2(E, J) == TypeKind::Bool;
         },
         [](Engine &E, const Judgment &J) -> GoalRef {
           TypeRef A = stripC(E, J.T1), B = stripC(E, J.T2);
           if (!B->Refn)
             return J.KGoal;
           if (!A->Refn) {
             E.fail("cannot prove a refinement for an unrefined boolean",
                    J.Loc);
             return nullptr;
           }
           TermRef Iff = mkAnd(mkImplies(A->Refn, B->Refn),
                               mkImplies(B->Refn, A->Refn));
           return gStar({ResAtom::pure(Iff)}, J.KGoal);
         },
         RuleKey::onPair({TypeKind::Bool}, {TypeKind::Bool})});
  // An integer viewed as a boolean (CAS expected slots, flag fields).
  R.add({Name("S-INT-BOOL"), JK, 49,
         [](Engine &E, const Judgment &J) {
           return kind1(E, J) == TypeKind::Int &&
                  kind2(E, J) == TypeKind::Bool;
         },
         [](Engine &E, const Judgment &J) -> GoalRef {
           TypeRef A = stripC(E, J.T1), B = stripC(E, J.T2);
           if (!A->Refn || !B->Refn) {
             E.fail("cannot relate integer and boolean refinements", J.Loc);
             return nullptr;
           }
           TermRef AsBool = mkNe(A->Refn, mkNat(0));
           TermRef Iff = mkAnd(mkImplies(AsBool, B->Refn),
                               mkImplies(B->Refn, AsBool));
           return gStar({ResAtom::pure(Iff)}, J.KGoal);
         },
         RuleKey::onPair({TypeKind::Int}, {TypeKind::Bool})});

  // Owned pointers: equal targets, subsume the pointee.
  R.add({Name("S-OWN-OWN"), JK, 50,
         [](Engine &E, const Judgment &J) {
           return kind1(E, J) == TypeKind::Own &&
                  kind2(E, J) == TypeKind::Own;
         },
         [IsLoc](Engine &E, const Judgment &J) -> GoalRef {
           TypeRef A = stripC(E, J.T1), B = stripC(E, J.T2);
           // The pointer value: A's refinement, or (for value subsumption)
           // the subject itself.
           TermRef Ptr = A->Refn ? A->Refn
                         : !IsLoc ? J.V1
                                  : E.freshUniversal("p", Sort::Loc);
           GoalRef Inner =
               mkSubsumeL(Ptr, A->Children[0], B->Children[0], J.KGoal,
                          J.Loc);
           return refnEqGoal(Ptr, B->Refn, Inner);
         },
         RuleKey::onPair({TypeKind::Own}, {TypeKind::Own})});

  // S-NULL (Figure 6).
  R.add({Name("S-NULL"), JK, 60,
         [](Engine &E, const Judgment &J) {
           return kind1(E, J) == TypeKind::Null &&
                  kind2(E, J) == TypeKind::Optional;
         },
         [Recur](Engine &E, const Judgment &J) -> GoalRef {
           TypeRef B = stripC(E, J.T2);
           TermRef Phi = B->Refn ? B->Refn : mkTrue();
           GoalRef Cont = J.KGoal;
           if (peel(B->Children[1])->K != TypeKind::Null)
             Cont = Recur(J.V1, tyNull(), B->Children[1], Cont, J.Loc);
           return gStar({ResAtom::pure(mkNot(Phi))}, Cont);
         },
         RuleKey::onPair({TypeKind::Null}, {TypeKind::Optional})});

  // S-OWN (Figure 6): also covers places (addresses are non-null).
  R.add({Name("S-OWN"), JK, 60,
         [](Engine &E, const Judgment &J) {
           TypeKind K1 = kind1(E, J);
           return (K1 == TypeKind::Own || K1 == TypeKind::Place) &&
                  kind2(E, J) == TypeKind::Optional;
         },
         [Recur](Engine &E, const Judgment &J) -> GoalRef {
           TypeRef B = stripC(E, J.T2);
           TermRef Phi = B->Refn ? B->Refn : mkTrue();
           return gStar({ResAtom::pure(Phi)},
                        Recur(J.V1, J.T1, B->Children[0], J.KGoal, J.Loc));
         },
         RuleKey::onPair({TypeKind::Own, TypeKind::Place},
                         {TypeKind::Optional})});

  // Optionals on both sides: split on the left refinement.
  R.add({Name("S-OPT-OPT"), JK, 50,
         [](Engine &E, const Judgment &J) {
           return kind1(E, J) == TypeKind::Optional &&
                  kind2(E, J) == TypeKind::Optional;
         },
         [Recur](Engine &E, const Judgment &J) -> GoalRef {
           TypeRef A = stripC(E, J.T1), B = stripC(E, J.T2);
           TermRef P1 = A->Refn ? A->Refn : mkTrue();
           TermRef P2 = B->Refn ? B->Refn : mkTrue();
           GoalRef Pos =
               gWand({ResAtom::pure(P1)},
                     gStar({ResAtom::pure(P2)},
                           Recur(J.V1, A->Children[0], B->Children[0],
                                 J.KGoal, J.Loc)));
           GoalRef Neg =
               gWand({ResAtom::pure(mkNot(P1))},
                     gStar({ResAtom::pure(mkNot(P2))},
                           Recur(J.V1, A->Children[1], B->Children[1],
                                 J.KGoal, J.Loc)));
           return gConj(Pos, Neg);
         },
         RuleKey::onPair({TypeKind::Optional}, {TypeKind::Optional})});

  // An optional whose refinement is known true/false collapses.
  R.add({Name("S-OPT-OWN"), JK, 49,
         [](Engine &E, const Judgment &J) {
           return kind1(E, J) == TypeKind::Optional &&
                  kind2(E, J) != TypeKind::Optional &&
                  kind2(E, J) != TypeKind::Uninit &&
                  kind2(E, J) != TypeKind::Any;
         },
         [Recur](Engine &E, const Judgment &J) -> GoalRef {
           TypeRef A = stripC(E, J.T1);
           TermRef Phi = A->Refn ? A->Refn : mkTrue();
           bool WantNull = kind2(E, J) == TypeKind::Null;
           if (WantNull)
             return gStar({ResAtom::pure(mkNot(Phi))},
                          Recur(J.V1, A->Children[1], J.T2, J.KGoal, J.Loc));
           return gStar({ResAtom::pure(Phi)},
                        Recur(J.V1, A->Children[0], J.T2, J.KGoal, J.Loc));
         },
         RuleKey::onPair({TypeKind::Optional}, {})});

  // Forgetting content: anything of statically-known size can be viewed as
  // uninitialized/unknown bytes (used when freeing structures).
  R.add({Name("S-FORGET"), JK, 30,
         [](Engine &E, const Judgment &J) {
           TypeKind K2 = kind2(E, J);
           if (K2 != TypeKind::Uninit && K2 != TypeKind::Any)
             return false;
           TypeKind K1 = kind1(E, J);
           if (K1 == TypeKind::Uninit || K1 == TypeKind::Any)
             return false; // handled by the merge rule
           return knownByteSize(peel(E.resolveTy(J.T1))) > 0;
         },
         [](Engine &E, const Judgment &J) -> GoalRef {
           TypeRef A = stripC(E, J.T1), B = stripC(E, J.T2);
           uint64_t Sz = knownByteSize(A);
           return gStar({ResAtom::pure(mkEq(
                            mkNat(static_cast<int64_t>(Sz)), B->Size))},
                        J.KGoal);
         },
         RuleKey::onPair({}, {TypeKind::Uninit, TypeKind::Any})});

  // Function pointers: specs must be compatible (structurally equal up to
  // parameter renaming). Covers passing a concrete function where a
  // function-typedef spec is expected.
  R.add({Name("S-FNPTR"), JK, 48,
         [](Engine &E, const Judgment &J) {
           return kind1(E, J) == TypeKind::FnPtr &&
                  kind2(E, J) == TypeKind::FnPtr;
         },
         [](Engine &E, const Judgment &J) -> GoalRef {
           auto A = peel(stripC(E, J.T1))->Spec;
           auto B = peel(stripC(E, J.T2))->Spec;
           if (A == B)
             return J.KGoal;
           auto Compatible = [&]() {
             if (A->Params.size() != B->Params.size() ||
                 A->Args.size() != B->Args.size() ||
                 A->RetExists.size() != B->RetExists.size())
               return false;
             // Rename A's parameters to B's.
             std::map<std::string, TermRef> Ren;
             for (size_t I = 0; I < A->Params.size(); ++I) {
               if (A->Params[I].second != B->Params[I].second)
                 return false;
               Ren[A->Params[I].first] =
                   pure::mkVar(B->Params[I].first, B->Params[I].second);
             }
             for (size_t I = 0; I < A->RetExists.size(); ++I) {
               if (A->RetExists[I].second != B->RetExists[I].second)
                 return false;
               Ren[A->RetExists[I].first] = pure::mkVar(
                   B->RetExists[I].first, B->RetExists[I].second);
             }
             for (size_t I = 0; I < A->Args.size(); ++I)
               if (!typeEqual(substTypeMap(A->Args[I], Ren), B->Args[I]))
                 return false;
             if ((A->Ret != nullptr) != (B->Ret != nullptr))
               return false;
             if (A->Ret && !typeEqual(substTypeMap(A->Ret, Ren), B->Ret))
               return false;
             if (A->Requires.size() != B->Requires.size() ||
                 A->Ensures.size() != B->Ensures.size())
               return false;
             return true;
           };
           if (!Compatible()) {
             E.fail("incompatible function-pointer specifications: " +
                        A->Name + " vs " + B->Name,
                    J.Loc);
             return nullptr;
           }
           return J.KGoal;
         },
         RuleKey::onPair({TypeKind::FnPtr}, {TypeKind::FnPtr})});

  // valueOf / place identity.
  R.add({Name("S-VALUEOF-EQ"), JK, 45,
         [](Engine &E, const Judgment &J) {
           TypeKind K1 = kind1(E, J), K2 = kind2(E, J);
           return (K1 == TypeKind::ValueOf || K1 == TypeKind::Place) &&
                  (K2 == TypeKind::ValueOf || K2 == TypeKind::Place);
         },
         [](Engine &E, const Judgment &J) -> GoalRef {
           TypeRef A = stripC(E, J.T1), B = stripC(E, J.T2);
           return refnEqGoal(A->Refn, B->Refn, J.KGoal);
         },
         RuleKey::onPair({TypeKind::ValueOf, TypeKind::Place},
                         {TypeKind::ValueOf, TypeKind::Place})});

  // A place becomes an owned pointer by collecting the pointee from Δ.
  R.add({Name("S-PLACE-OWN"), JK, 50,
         [](Engine &E, const Judgment &J) {
           return kind1(E, J) == TypeKind::Place &&
                  kind2(E, J) == TypeKind::Own;
         },
         [](Engine &E, const Judgment &J) -> GoalRef {
           TypeRef A = stripC(E, J.T1), B = stripC(E, J.T2);
           TermRef L = A->Refn;
           GoalRef Collect =
               gStar({ResAtom::loc(L, B->Children[0])}, J.KGoal);
           return refnEqGoal(L, B->Refn, Collect);
         },
         RuleKey::onPair({TypeKind::Place}, {TypeKind::Own})});

  // A valueOf whose ownership is parked in Δ.
  R.add({Name("S-VALUEOF-RESOLVE"), JK, 88,
         [](Engine &E, const Judgment &J) {
           TypeRef A = peel(E.resolveTy(J.T1));
           TypeKind K2 = kind2(E, J);
           return A->K == TypeKind::ValueOf && K2 != TypeKind::ValueOf &&
                  K2 != TypeKind::Place && K2 != TypeKind::Uninit &&
                  K2 != TypeKind::Any;
         },
         [Recur](Engine &E, const Judgment &J) -> GoalRef {
           TypeRef A = stripC(E, J.T1);
           TermRef V = E.resolve(A->Refn);
           if (const ResAtom *Found = findValAtom(E, V)) {
             (void)Found;
             ResAtom Got;
             if (!E.popValAtom(V, Got, J.Loc))
               return nullptr;
             return Recur(V, Got.Ty, J.T2, J.KGoal, J.Loc);
           }
           // No parked ownership: the value may still be a place (address).
           return Recur(V, tyPlace(V), J.T2, J.KGoal, J.Loc);
         },
         RuleKey::onPair({TypeKind::ValueOf}, {})});
}

//===----------------------------------------------------------------------===//
// Location-only rules (composition, padding, uninit algebra, wands)
//===----------------------------------------------------------------------===//

void registerLocOnly(RuleRegistry &R) {
  // Recompose a struct from its (split) field atoms.
  R.add({"SL-TO-STRUCT", JudgKind::SubsumeL, 70,
         [](Engine &E, const Judgment &J) {
           return kind2(E, J) == TypeKind::Struct &&
                  kind1(E, J) != TypeKind::Struct;
         },
         [](Engine &E, const Judgment &J) -> GoalRef {
           TypeRef B = stripC(E, J.T2);
           const caesium::StructLayout *L = B->Layout;
           // Put the popped content back; then collect every field (and the
           // padding) at its offset.
           E.pushAtom(ResAtom::loc(J.V1, J.T1));
           ResList Need;
           uint64_t Covered = 0;
           for (size_t I = 0; I < L->Fields.size(); ++I) {
             const caesium::FieldLayout &F = L->Fields[I];
             if (F.Offset > Covered)
               Need.push_back(
                   ResAtom::loc(locOffset(J.V1, Covered),
                                tyUninit(mkNat(F.Offset - Covered))));
             Need.push_back(
                 ResAtom::loc(locOffset(J.V1, F.Offset), B->Children[I]));
             Covered = F.Offset + F.Ly.Size;
           }
           if (Covered < L->Size)
             Need.push_back(ResAtom::loc(locOffset(J.V1, Covered),
                                         tyUninit(mkNat(L->Size - Covered))));
           return gStar(std::move(Need), J.KGoal);
         },
         RuleKey::onPair({}, {TypeKind::Struct})});

  // Struct to struct (same layout): field-wise subsumption.
  R.add({"SL-STRUCT-STRUCT", JudgKind::SubsumeL, 72,
         [](Engine &E, const Judgment &J) {
           TypeRef A = peel(E.resolveTy(J.T1)), B = peel(E.resolveTy(J.T2));
           return A->K == TypeKind::Struct && B->K == TypeKind::Struct &&
                  A->Layout == B->Layout;
         },
         [](Engine &E, const Judgment &J) -> GoalRef {
           TypeRef A = stripC(E, J.T1), B = stripC(E, J.T2);
           GoalRef G = J.KGoal;
           const caesium::StructLayout *L = A->Layout;
           for (size_t I = L->Fields.size(); I-- > 0;) {
             G = mkSubsumeL(locOffset(J.V1, L->Fields[I].Offset),
                            A->Children[I], B->Children[I], G, J.Loc);
           }
           return G;
         },
         RuleKey::onPair({TypeKind::Struct}, {TypeKind::Struct})});

  // Struct content subsuming into a non-struct target: expose the first
  // field and retry (progress is guaranteed because the target is scalar).
  R.add({"SL-STRUCT-L", JudgKind::SubsumeL, 69,
         [](Engine &E, const Judgment &J) {
           return kind1(E, J) == TypeKind::Struct &&
                  kind2(E, J) != TypeKind::Struct;
         },
         [](Engine &E, const Judgment &J) -> GoalRef {
           E.pushAtom(ResAtom::loc(J.V1, stripC(E, J.T1))); // splits fields
           return gStar({ResAtom::loc(J.V1, J.T2)}, J.KGoal);
         },
         RuleKey::onPair({TypeKind::Struct}, {})});

  // Recompose padding.
  R.add({"SL-TO-PADDED", JudgKind::SubsumeL, 68,
         [](Engine &E, const Judgment &J) {
           return kind2(E, J) == TypeKind::Padded;
         },
         [](Engine &E, const Judgment &J) -> GoalRef {
           TypeRef B = stripC(E, J.T2);
           uint64_t Inner = knownByteSize(B->Children[0]);
           if (Inner == 0) {
             E.fail("cannot recompose padding around a type of unknown "
                    "size: " +
                        B->str(),
                    J.Loc);
             return nullptr;
           }
           E.pushAtom(ResAtom::loc(J.V1, J.T1));
           TermRef Rest = E.resolve(
               mkSub(B->Size, mkNat(static_cast<int64_t>(Inner))));
           ResList Need = {
               ResAtom::loc(J.V1, B->Children[0]),
               ResAtom::loc(locOffset(J.V1, Inner), tyUninit(Rest))};
           return gStar(std::move(Need), J.KGoal);
         },
         RuleKey::onPair({}, {TypeKind::Padded})});
  R.add({"SL-PADDED-L", JudgKind::SubsumeL, 67,
         [](Engine &E, const Judgment &J) {
           return kind1(E, J) == TypeKind::Padded &&
                  kind2(E, J) != TypeKind::Padded;
         },
         [](Engine &E, const Judgment &J) -> GoalRef {
           E.pushAtom(ResAtom::loc(J.V1, stripC(E, J.T1))); // splits
           return gStar({ResAtom::loc(J.V1, J.T2)}, J.KGoal);
         },
         RuleKey::onPair({TypeKind::Padded}, {})});

  // uninit/any splitting and merging.
  R.add({"SL-UNINIT-MERGE", JudgKind::SubsumeL, 66,
         [](Engine &E, const Judgment &J) {
           TypeKind K1 = kind1(E, J), K2 = kind2(E, J);
           return (K1 == TypeKind::Uninit || K1 == TypeKind::Any) &&
                  (K2 == TypeKind::Uninit || K2 == TypeKind::Any);
         },
         [](Engine &E, const Judgment &J) -> GoalRef {
           TypeRef A = stripC(E, J.T1), B = stripC(E, J.T2);
           TermRef M = A->Size, N = B->Size;
           if (trySideCond(E, mkEq(M, N)))
             return J.KGoal;
           // Shrink: the block in hand is larger; the tail stays in Δ
           // (this is the front-of-buffer alloc variant of Section 6).
           if (trySideCond(E, mkLe(N, M))) {
             E.pushAtom(ResAtom::loc(locOffset(J.V1, E.resolve(N)),
                                     tyUninit(E.resolve(mkSub(M, N)))));
             return J.KGoal;
           }
           // Grow: consume the rest from Δ.
           ResList Need = {
               ResAtom::pure(mkLe(M, N)),
               ResAtom::loc(locOffset(J.V1, E.resolve(M)),
                            tyUninit(E.resolve(mkSub(N, M))))};
           return gStar(std::move(Need), J.KGoal);
         },
         RuleKey::onPair({TypeKind::Uninit, TypeKind::Any},
                         {TypeKind::Uninit, TypeKind::Any})});

  // Sized content forgotten into a larger uninit: forget, then extend.
  // Outranks the exact-size S-FORGET for location subsumptions.
  R.add({"SL-FORGET-EXTEND", JudgKind::SubsumeL, 31,
         [](Engine &E, const Judgment &J) {
           TypeKind K2 = kind2(E, J);
           if (K2 != TypeKind::Uninit && K2 != TypeKind::Any)
             return false;
           TypeKind K1 = kind1(E, J);
           if (K1 == TypeKind::Uninit || K1 == TypeKind::Any)
             return false;
           return knownByteSize(peel(E.resolveTy(J.T1))) > 0;
         },
         [](Engine &E, const Judgment &J) -> GoalRef {
           TypeRef A = stripC(E, J.T1), B = stripC(E, J.T2);
           uint64_t Sz = knownByteSize(A);
           TermRef M = mkNat(static_cast<int64_t>(Sz));
           if (trySideCond(E, mkEq(M, B->Size)))
             return J.KGoal;
           ResList Need = {
               ResAtom::pure(mkLe(M, B->Size)),
               ResAtom::loc(locOffset(J.V1, Sz),
                            tyUninit(E.resolve(mkSub(B->Size, M))))};
           return gStar(std::move(Need), J.KGoal);
         },
         RuleKey::onPair({}, {TypeKind::Uninit, TypeKind::Any})});

  // Arrays with the same element shape: refinement-list equality.
  R.add({"SL-ARRAY-SAME", JudgKind::SubsumeL, 71,
         [](Engine &E, const Judgment &J) {
           TypeRef A = peel(E.resolveTy(J.T1)), B = peel(E.resolveTy(J.T2));
           return A->K == TypeKind::Array && B->K == TypeKind::Array &&
                  A->ElemSize == B->ElemSize;
         },
         [](Engine &E, const Judgment &J) -> GoalRef {
           TypeRef A = stripC(E, J.T1), B = stripC(E, J.T2);
           TermRef Common = pure::mkVar("#cmp", pure::Sort::Nat);
           TypeRef EA = substTypeVar(A->Children[0], A->ElemBinder, Common);
           TypeRef EB = substTypeVar(B->Children[0], B->ElemBinder, Common);
           if (!typeEqual(EA, EB)) {
             E.fail("array element types differ: " + A->str() + " vs " +
                        B->str(),
                    J.Loc);
             return nullptr;
           }
           return refnEqGoal(A->Refn, B->Refn, J.KGoal);
         },
         RuleKey::onPair({TypeKind::Array}, {TypeKind::Array})});

  // Magic wands (Section 2.2): introduction captures the resources the
  // sub-proof consumes; application pays the hole and yields the result.
  R.add({"WAND-INTRO", JudgKind::SubsumeL, 75,
         [](Engine &E, const Judgment &J) {
           return kind2(E, J) == TypeKind::Wand &&
                  kind1(E, J) != TypeKind::Wand;
         },
         [](Engine &E, const Judgment &J) -> GoalRef {
           TypeRef B = stripC(E, J.T2);
           E.pushAtom(ResAtom::loc(J.V1, J.T1));
           ResAtom Hole = ResAtom::loc(B->WandLoc, B->Children[1]);
           return gWand({Hole},
                        gStar({ResAtom::loc(J.V1, B->Children[0])}, J.KGoal));
         },
         RuleKey::onPair({}, {TypeKind::Wand})});
  R.add({"WAND-APPLY", JudgKind::SubsumeL, 74,
         [](Engine &E, const Judgment &J) {
           return kind1(E, J) == TypeKind::Wand;
         },
         [](Engine &E, const Judgment &J) -> GoalRef {
           TypeRef A = stripC(E, J.T1);
           ResAtom Hole = ResAtom::loc(A->WandLoc, A->Children[1]);
           return gStar({Hole},
                        mkSubsumeL(J.V1, A->Children[0], J.T2, J.KGoal,
                                   J.Loc));
         },
         RuleKey::onPair({TypeKind::Wand}, {})});

  // Wand-to-wand: identical hole, subsume the results.
  R.add({"WAND-WAND", JudgKind::SubsumeL, 76,
         [](Engine &E, const Judgment &J) {
           return kind1(E, J) == TypeKind::Wand &&
                  kind2(E, J) == TypeKind::Wand;
         },
         [](Engine &E, const Judgment &J) -> GoalRef {
           TypeRef A = stripC(E, J.T1), B = stripC(E, J.T2);
           // Same hole location and type: result subsumption. Otherwise:
           // re-introduce (apply A under B's hole).
           if (A->WandLoc == B->WandLoc &&
               typeEqual(E.resolveTy(A->Children[1]),
                         E.resolveTy(B->Children[1])))
             return mkSubsumeL(J.V1, A->Children[0], B->Children[0], J.KGoal,
                               J.Loc);
           ResAtom HoleB = ResAtom::loc(B->WandLoc, B->Children[1]);
           ResAtom HoleA = ResAtom::loc(A->WandLoc, A->Children[1]);
           return gWand(
               {HoleB},
               gStar({HoleA}, mkSubsumeL(J.V1, A->Children[0],
                                         B->Children[0], J.KGoal, J.Loc)));
         },
         RuleKey::onPair({TypeKind::Wand}, {TypeKind::Wand})});
}

} // namespace

namespace rcc::refinedc {
void registerSubsumeRules(lithium::RuleRegistry &R) {
  registerShared(R, lithium::JudgKind::SubsumeV, "-V");
  registerShared(R, lithium::JudgKind::SubsumeL, "-L");
  registerLocOnly(R);
}
} // namespace rcc::refinedc
