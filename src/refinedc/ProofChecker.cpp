//===- ProofChecker.cpp ---------------------------------------------------===//
//
// Part of RefinedC++, a C++ reproduction of the RefinedC verifier (PLDI'21).
//
//===----------------------------------------------------------------------===//

#include "refinedc/ProofChecker.h"

#include "trace/Trace.h"

using namespace rcc;
using namespace rcc::refinedc;
using namespace rcc::lithium;

ProofCheckResult ProofChecker::check(const Derivation &D,
                                     const std::vector<pure::Lemma> &Lemmas) {
  trace::Span ReplaySpan(trace::Category::ProofCheck, "proofcheck.replay");
  trace::count("proofcheck.derivations");
  trace::count("proofcheck.steps", D.Steps.size());
  ProofCheckResult R;

  // A fresh, independent solver: the engine's solver state (enabled
  // tactics) is not trusted; the replay enables everything a Coq-side
  // checker would accept (registered decision procedures and the statements
  // of manually proved lemmas).
  pure::PureSolver Solver;
  Solver.enableSolver("multiset_solver");
  Solver.enableSolver("set_solver");
  for (const pure::Lemma &L : Lemmas)
    Solver.addLemma(L);

  for (const DerivStep &S : D.Steps) {
    switch (S.K) {
    case DerivStep::RuleApp:
      // The rule must exist in the registry; built-in engine
      // transformations are whitelisted.
      if (S.Rule != "unfold-named" && S.Rule != "focus-own" &&
          S.Rule != "focus-own-val" && S.Rule != "WAND-INTRO-GOAL" &&
          S.Rule != "O-ARRAY-READ" && S.Rule != "O-ARRAY-WRITE" &&
          !Rules.hasRule(S.Rule)) {
        R.Error = "derivation applies unknown rule '" + S.Rule + "'";
        return R;
      }
      ++R.RuleSteps;
      break;
    case DerivStep::SideCond: {
      if (S.Rule == "failed") {
        R.Error = "derivation contains a failed side condition: " + S.Text;
        return R;
      }
      if (!S.Prop)
        break;
      pure::EvarEnv Env; // evars in recorded props are already resolved
      pure::SolveResult SR = Solver.prove(S.Hyps, S.Prop, Env);
      if (!SR.Proved) {
        R.Error = "side condition failed to re-check: " + S.Text;
        return R;
      }
      ++R.SideConds;
      break;
    }
    case DerivStep::AtomMatch:
    case DerivStep::Intro:
      break;
    }
  }
  if (D.Steps.empty()) {
    R.Error = "empty derivation";
    return R;
  }
  R.Ok = true;
  return R;
}
