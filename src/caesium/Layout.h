//===- Layout.h - C data layouts for the Caesium memory model --*- C++ -*-===//
//
// Part of RefinedC++, a C++ reproduction of the RefinedC verifier (PLDI'21).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Integer types and data layouts (size/alignment), following the paper's
/// Caesium semantics (Section 3): fixed-size integers with explicit
/// signedness, and struct layouts with named fields at computed offsets.
/// The target model is x86-64 (LP64): pointers and size_t are 8 bytes.
///
//===----------------------------------------------------------------------===//

#ifndef RCC_CAESIUM_LAYOUT_H
#define RCC_CAESIUM_LAYOUT_H

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

namespace rcc::caesium {

/// A fixed-size integer type.
struct IntType {
  uint8_t ByteSize = 4;
  bool Signed = true;

  uint64_t bits() const { return 8ull * ByteSize; }

  /// Smallest representable value.
  int64_t minVal() const {
    if (!Signed)
      return 0;
    return ByteSize >= 8 ? INT64_MIN : -(1ll << (bits() - 1));
  }
  /// Largest representable value as an unsigned 64-bit quantity.
  uint64_t maxVal() const {
    if (Signed)
      return ByteSize >= 8 ? uint64_t(INT64_MAX)
                           : (1ull << (bits() - 1)) - 1;
    return ByteSize >= 8 ? UINT64_MAX : (1ull << bits()) - 1;
  }
  /// True if the mathematical integer \p V is representable.
  bool inRange(int64_t V) const {
    if (Signed)
      return V >= minVal() && V <= int64_t(maxVal());
    return V >= 0 && uint64_t(V) <= maxVal();
  }

  bool operator==(const IntType &O) const = default;

  std::string str() const {
    return (Signed ? "i" : "u") + std::to_string(bits());
  }
};

inline IntType intU8() { return {1, false}; }
inline IntType intU16() { return {2, false}; }
inline IntType intU32() { return {4, false}; }
inline IntType intU64() { return {8, false}; }
inline IntType intI8() { return {1, true}; }
inline IntType intI16() { return {2, true}; }
inline IntType intI32() { return {4, true}; }
inline IntType intI64() { return {8, true}; }
inline IntType intSizeT() { return intU64(); }

constexpr uint64_t PtrBytes = 8;

/// A raw layout: size and alignment in bytes.
struct Layout {
  uint64_t Size = 0;
  uint64_t Align = 1;
  bool operator==(const Layout &O) const = default;
};

inline Layout layoutOfInt(IntType I) { return {I.ByteSize, I.ByteSize}; }
inline Layout layoutOfPtr() { return {PtrBytes, PtrBytes}; }

/// A struct field: name, layout, and byte offset from the struct start.
struct FieldLayout {
  std::string Name;
  Layout Ly;
  uint64_t Offset = 0;
};

/// The physical layout of a C struct: what the paper calls "the C type"
/// (names and offsets of fields), with no correctness content.
struct StructLayout {
  std::string Name;
  std::vector<FieldLayout> Fields;
  uint64_t Size = 0;
  uint64_t Align = 1;

  /// Computes offsets, total size and alignment from the field layouts,
  /// inserting padding per the usual C rules.
  void computeLayout();

  const FieldLayout *field(const std::string &FName) const {
    for (const FieldLayout &F : Fields)
      if (F.Name == FName)
        return &F;
    return nullptr;
  }
  int fieldIndex(const std::string &FName) const {
    for (size_t I = 0; I < Fields.size(); ++I)
      if (Fields[I].Name == FName)
        return static_cast<int>(I);
    return -1;
  }
};

} // namespace rcc::caesium

#endif // RCC_CAESIUM_LAYOUT_H
