//===- RaceDetector.h - Happens-before data-race detection -----*- C++ -*-===//
//
// Part of RefinedC++, a C++ reproduction of the RefinedC verifier (PLDI'21).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A vector-clock (FastTrack-style) data-race detector for the interpreter.
/// Caesium assigns undefined behaviour to data races on non-atomic accesses
/// following RustBelt (Section 3); sequentially consistent atomic accesses
/// synchronize through a global SC clock maintained by the machine. Two
/// conflicting accesses race when neither happens-before the other and at
/// least one of them is non-atomic.
///
//===----------------------------------------------------------------------===//

#ifndef RCC_CAESIUM_RACEDETECTOR_H
#define RCC_CAESIUM_RACEDETECTOR_H

#include "caesium/Value.h"

#include <map>
#include <string>
#include <vector>

namespace rcc::caesium {

using VectorClock = std::vector<uint64_t>;

/// Joins \p B into \p A (pointwise max).
void vcJoin(VectorClock &A, const VectorClock &B);
/// True if epoch (Tid, Clock) happens-before the observer clock \p VC.
bool vcOrdered(int Tid, uint64_t Clock, const VectorClock &VC);

class RaceDetector {
public:
  /// Records an access of \p Size bytes at \p L by thread \p Tid with
  /// current vector clock \p VC. Returns an empty string, or a description
  /// of the detected race.
  std::string onAccess(int Tid, const VectorClock &VC, MemLoc L,
                       uint64_t Size, bool IsWrite, bool Atomic);

  void reset() { Bytes.clear(); }

private:
  struct Epoch {
    int Tid = -1;
    uint64_t Clock = 0;
    bool Atomic = false;
    bool valid() const { return Tid >= 0; }
  };
  struct ByteState {
    Epoch LastWrite;
    /// Last read epoch per thread, with atomicity of that read.
    std::map<int, std::pair<uint64_t, bool>> Reads;
  };

  std::map<std::pair<uint64_t, uint64_t>, ByteState> Bytes;
};

} // namespace rcc::caesium

#endif // RCC_CAESIUM_RACEDETECTOR_H
