//===- Interp.cpp ---------------------------------------------------------===//
//
// Part of RefinedC++, a C++ reproduction of the RefinedC verifier (PLDI'21).
//
//===----------------------------------------------------------------------===//

#include "caesium/Interp.h"

using namespace rcc::caesium;

Machine::Machine(const Program &P, uint64_t Seed)
    : Prog(P), RngState(Seed * 6364136223846793005ull + 1442695040888963407ull) {
  // Materialize globals and register functions as addressable entities.
  for (const GlobalDef &G : P.Globals) {
    MemLoc L = Mem.allocate(G.Size, AllocKind::Global, G.Name);
    GlobalAddrs[G.Name] = L;
    if (G.HasInit)
      Mem.store(L, G.Init, G.Init.isPtr() ? PtrBytes : G.Init.Size);
  }
  for (const auto &[Name, F] : P.Functions)
    GlobalAddrs[Name] = Mem.registerFunction(Name);
  // Builtins are addressable too, so they can be called uniformly.
  for (const char *B :
       {"rc_spawn", "rc_join", "rc_alloc", "rc_free", "rc_assert"})
    GlobalAddrs[B] = Mem.registerFunction(B);
}

MemLoc Machine::globalAddr(const std::string &Name) const {
  auto It = GlobalAddrs.find(Name);
  return It == GlobalAddrs.end() ? MemLoc{} : It->second;
}

uint64_t Machine::rngNext() {
  RngState ^= RngState << 13;
  RngState ^= RngState >> 7;
  RngState ^= RngState << 17;
  return RngState;
}

uint64_t Machine::rngBounded(uint64_t Bound) {
  // Rejection sampling: `rngNext() % Bound` skews toward small values
  // whenever Bound does not divide 2^64, biasing the scheduler away from
  // high thread ids. Draw from the largest multiple of Bound instead.
  if (Bound <= 1)
    return 0;
  uint64_t Limit = UINT64_MAX - UINT64_MAX % Bound;
  uint64_t R;
  do
    R = rngNext();
  while (R >= Limit);
  return R % Bound;
}

void Machine::raiseUB(std::string Msg, rcc::SourceLoc Loc) {
  if (Halted)
    return;
  Halted = true;
  Result.C = ExecResult::Code::UB;
  Result.Message = std::move(Msg);
  Result.Loc = Loc;
}

void Machine::syncSC(Thread &T) {
  // SC accesses are totally ordered; model with a global clock that each SC
  // access acquires and releases.
  vcJoin(T.VC, SCClock);
  vcJoin(SCClock, T.VC);
  if (static_cast<size_t>(T.Id) >= T.VC.size())
    T.VC.resize(T.Id + 1, 0);
  T.VC[T.Id]++;
}

void Machine::pushFrame(Thread &T, const Function *F,
                        const std::vector<RtVal> &Args) {
  CallFrame Frame;
  Frame.F = F;
  if (Args.size() != F->Params.size()) {
    raiseUB("call to '" + F->Name + "' with wrong number of arguments",
            F->Loc);
    return;
  }
  for (size_t I = 0; I < F->Params.size(); ++I) {
    const auto &[Name, Size] = F->Params[I];
    MemLoc Slot = Mem.allocate(Size, AllocKind::Stack, F->Name + "." + Name);
    Frame.Slots[Name] = Slot;
    uint64_t StoreSize = Args[I].isPtr() ? PtrBytes : Args[I].Size;
    if (StoreSize != 0 && StoreSize != Size) {
      raiseUB("argument size mismatch for '" + Name + "' in call to '" +
                  F->Name + "'",
              F->Loc);
      return;
    }
    if (!Args[I].isPoison())
      Mem.store(Slot, Args[I], Size);
  }
  for (const auto &[Name, Size] : F->Locals)
    Frame.Slots[Name] =
        Mem.allocate(Size, AllocKind::Stack, F->Name + "." + Name);
  T.Stack.push_back(std::move(Frame));
}

ExecResult Machine::run(const std::string &EntryFn, std::vector<RtVal> Args,
                        uint64_t MaxSteps) {
  const Function *F = Prog.function(EntryFn);
  if (!F) {
    Result.C = ExecResult::Code::Error;
    Result.Message = "unknown entry function '" + EntryFn + "'";
    return Result;
  }
  Threads.clear();
  Threads.push_back(Thread());
  Threads[0].Id = 0;
  Threads[0].VC = {1};
  pushFrame(Threads[0], F, Args);

  while (!Halted && Steps < MaxSteps) {
    // Collect runnable threads (unblocking finished joins).
    std::vector<int> Runnable;
    for (Thread &T : Threads) {
      if (T.State == ThreadState::BlockedJoin) {
        if (T.JoinTarget >= 0 &&
            Threads[T.JoinTarget].State == ThreadState::Done)
          T.State = ThreadState::Runnable;
      }
      if (T.State == ThreadState::Runnable)
        Runnable.push_back(T.Id);
    }
    if (Runnable.empty()) {
      bool AllDone = true;
      for (Thread &T : Threads)
        if (T.State != ThreadState::Done)
          AllDone = false;
      if (!AllDone) {
        Result.C = ExecResult::Code::Deadlock;
        Result.Message = "all live threads are blocked";
      }
      break;
    }
    int Pick = Runnable[rngBounded(Runnable.size())];
    step(Threads[Pick]);
    ++Steps;
  }
  if (!Halted && Steps >= MaxSteps) {
    Result.C = ExecResult::Code::Timeout;
    Result.Message = "machine did not terminate within the step budget";
  }
  if (Result.C == ExecResult::Code::Ok)
    Result.MainRet = Threads[0].Result;
  return Result;
}

void Machine::step(Thread &T) {
  if (T.Stack.empty()) {
    T.State = ThreadState::Done;
    return;
  }
  CallFrame &F = T.Stack.back();
  if (F.Eval.empty()) {
    startStatement(T);
    return;
  }
  EvalItem &Top = F.Eval.back();
  if (Top.Awaiting)
    return; // a callee frame is running; shouldn't happen (callee is deeper)
  unsigned NumChildren = static_cast<unsigned>(Top.E->Args.size());
  if (Top.Next < NumChildren) {
    EvalItem Child;
    Child.E = Top.E->Args[Top.Next].get();
    Top.Next++;
    F.Eval.push_back(std::move(Child));
    return;
  }
  computeTop(T);
}

void Machine::startStatement(Thread &T) {
  CallFrame &F = T.Stack.back();
  if (F.Block >= F.F->Blocks.size() ||
      F.Index >= F.F->Blocks[F.Block].Stmts.size()) {
    raiseUB("control fell off the end of a block in '" + F.F->Name + "'",
            F.F->Loc);
    return;
  }
  const Stmt &S = F.F->Blocks[F.Block].Stmts[F.Index];
  switch (S.K) {
  case StmtKind::Goto:
    F.Block = S.Target1;
    F.Index = 0;
    return;
  case StmtKind::UBStmt:
    raiseUB(S.Msg.empty() ? "explicit undefined behaviour" : S.Msg, S.Loc);
    return;
  case StmtKind::Return:
    if (!S.E) {
      returnFromFrame(T, RtVal::poison());
      return;
    }
    break;
  default:
    break;
  }
  assert(S.E && "statement requires an expression");
  EvalItem Item;
  Item.E = S.E.get();
  F.Eval.push_back(std::move(Item));
}

void Machine::deliver(Thread &T, RtVal V) {
  CallFrame &F = T.Stack.back();
  assert(!F.Eval.empty() && "deliver with empty eval stack");
  F.Eval.pop_back();
  if (F.Eval.empty()) {
    finishStatement(T, V);
    return;
  }
  F.Eval.back().Vals.push_back(V);
}

void Machine::finishStatement(Thread &T, RtVal V) {
  CallFrame &F = T.Stack.back();
  const Stmt &S = F.F->Blocks[F.Block].Stmts[F.Index];
  switch (S.K) {
  case StmtKind::ExprS:
    F.Index++;
    return;
  case StmtKind::Return:
    returnFromFrame(T, V);
    return;
  case StmtKind::CondGoto: {
    if (!V.isInt()) {
      raiseUB("branch on a non-integer or uninitialized value", S.Loc);
      return;
    }
    F.Block = V.Bits != 0 ? S.Target1 : S.Target2;
    F.Index = 0;
    return;
  }
  case StmtKind::Switch: {
    if (!V.isInt()) {
      raiseUB("switch on a non-integer or uninitialized value", S.Loc);
      return;
    }
    int64_t X = V.asSigned();
    for (const auto &[CaseVal, Target] : S.SwitchCases) {
      if (CaseVal == X) {
        F.Block = Target;
        F.Index = 0;
        return;
      }
    }
    F.Block = S.DefaultTarget;
    F.Index = 0;
    return;
  }
  case StmtKind::Goto:
  case StmtKind::UBStmt:
    assert(false && "terminators without expressions are handled earlier");
    return;
  }
}

void Machine::returnFromFrame(Thread &T, RtVal V) {
  CallFrame Frame = std::move(T.Stack.back());
  T.Stack.pop_back();
  // Stack slots die with the frame; later access is use-after-free UB.
  for (const auto &[Name, Slot] : Frame.Slots)
    Mem.deallocate(Slot.Alloc);
  if (T.Stack.empty()) {
    T.Result = V;
    T.State = ThreadState::Done;
    return;
  }
  // The caller's top eval item is the awaiting Call; complete it.
  CallFrame &Caller = T.Stack.back();
  assert(!Caller.Eval.empty() && Caller.Eval.back().Awaiting &&
         "return without awaiting call");
  Caller.Eval.back().Awaiting = false;
  deliver(T, V);
}

//===----------------------------------------------------------------------===//
// Memory accesses
//===----------------------------------------------------------------------===//

RtVal Machine::memLoad(Thread &T, const Expr &E, MemLoc L) {
  bool Atomic = E.Ord == MemOrder::SeqCst;
  if (Atomic)
    syncSC(T);
  std::string Race =
      Races.onAccess(T.Id, T.VC, L, E.AccessSize, /*IsWrite=*/false, Atomic);
  if (!Race.empty()) {
    raiseUB(Race, E.Loc);
    return RtVal::poison();
  }
  MemResult R = Mem.load(L, E.AccessSize);
  if (!R.Ok) {
    raiseUB(R.UB, E.Loc);
    return RtVal::poison();
  }
  return R.Val;
}

void Machine::memStore(Thread &T, const Expr &E, MemLoc L, RtVal V) {
  bool Atomic = E.Ord == MemOrder::SeqCst;
  if (Atomic)
    syncSC(T);
  std::string Race =
      Races.onAccess(T.Id, T.VC, L, E.AccessSize, /*IsWrite=*/true, Atomic);
  if (!Race.empty()) {
    raiseUB(Race, E.Loc);
    return;
  }
  // Size-adjust integer values whose width differs (front-end casts should
  // prevent this; be strict).
  if (V.isInt() && V.Size != E.AccessSize) {
    raiseUB("store size mismatch (" + std::to_string(V.Size) + " vs " +
                std::to_string(E.AccessSize) + ")",
            E.Loc);
    return;
  }
  MemResult R = Mem.store(L, V, E.AccessSize);
  if (!R.Ok)
    raiseUB(R.UB, E.Loc);
}

//===----------------------------------------------------------------------===//
// Operators
//===----------------------------------------------------------------------===//

RtVal Machine::evalUnOp(const Expr &E, RtVal A) {
  if (A.isPoison()) {
    raiseUB("use of uninitialized value in unary operator", E.Loc);
    return RtVal::poison();
  }
  switch (E.UOp) {
  case UnOpKind::Neg: {
    if (!A.isInt()) {
      raiseUB("negation of a pointer", E.Loc);
      return RtVal::poison();
    }
    int64_t V = A.interp(E.Ity);
    if (E.Ity.Signed && V == E.Ity.minVal()) {
      raiseUB("signed integer overflow in negation", E.Loc);
      return RtVal::poison();
    }
    int64_t R = -V;
    if (!E.Ity.Signed)
      return RtVal::fromUInt(static_cast<uint64_t>(R), E.Ity.ByteSize);
    return RtVal::fromInt(E.Ity, R);
  }
  case UnOpKind::LogicalNot: {
    if (A.isPtr())
      return RtVal::fromInt(intI32(), A.isNullPtr() ? 1 : 0);
    return RtVal::fromInt(intI32(), A.Bits == 0 ? 1 : 0);
  }
  case UnOpKind::BitNot:
    if (!A.isInt()) {
      raiseUB("bitwise not of a pointer", E.Loc);
      return RtVal::poison();
    }
    return RtVal::fromUInt(~A.Bits, A.Size);
  case UnOpKind::Cast: {
    if (A.isPtr()) {
      // Pointer-to-pointer "casts" are identity; int<->ptr is unsupported.
      if (E.To.ByteSize == PtrBytes)
        return A;
      raiseUB("unsupported pointer-to-integer cast", E.Loc);
      return RtVal::poison();
    }
    // Integer conversion: wraparound semantics (implementation-defined
    // narrowing is pinned to two's-complement truncation).
    int64_t V = A.interp(E.Ity);
    return RtVal::fromInt(E.To, V);
  }
  }
  return RtVal::poison();
}

RtVal Machine::evalBinOp(const Expr &E, RtVal L, RtVal R) {
  auto UB = [&](const std::string &M) {
    raiseUB(M, E.Loc);
    return RtVal::poison();
  };

  switch (E.Op) {
  case BinOpKind::PtrEq:
  case BinOpKind::PtrNe: {
    if (!L.isPtr() || !R.isPtr())
      return UB("pointer comparison on non-pointer values");
    bool Eq = L.Loc == R.Loc;
    return RtVal::fromInt(intI32(), (E.Op == BinOpKind::PtrEq) == Eq ? 1 : 0);
  }
  case BinOpKind::PtrAdd:
  case BinOpKind::PtrSub: {
    if (!L.isPtr() || !R.isInt())
      return UB("invalid pointer arithmetic operands");
    if (L.isNullPtr())
      return UB("pointer arithmetic on NULL");
    int64_t N = R.asSigned();
    if (E.Op == BinOpKind::PtrSub)
      N = -N;
    int64_t NewOff =
        static_cast<int64_t>(L.Loc.Off) + N * static_cast<int64_t>(E.ElemSize);
    const Allocation *A = Mem.allocation(L.Loc.Alloc);
    if (!A || !A->Alive)
      return UB("pointer arithmetic on a dead allocation");
    if (NewOff < 0 || static_cast<uint64_t>(NewOff) > A->Size)
      return UB("pointer arithmetic out of bounds");
    return RtVal::ptr(MemLoc{L.Loc.Alloc, static_cast<uint64_t>(NewOff)});
  }
  case BinOpKind::PtrDiff: {
    if (!L.isPtr() || !R.isPtr())
      return UB("pointer difference on non-pointers");
    if (L.Loc.Alloc != R.Loc.Alloc)
      return UB("pointer difference across allocations");
    int64_t D = static_cast<int64_t>(L.Loc.Off) -
                static_cast<int64_t>(R.Loc.Off);
    return RtVal::fromInt(intI64(), D / static_cast<int64_t>(E.ElemSize));
  }
  default:
    break;
  }

  if (L.isPoison() || R.isPoison())
    return UB("use of uninitialized value in binary operator");
  if (!L.isInt() || !R.isInt())
    return UB("integer operator on pointer values");

  IntType Ity = E.Ity;
  int64_t A = L.interp(Ity), B = R.interp(Ity);
  uint64_t UA = L.Bits, UB_ = R.Bits;

  auto wrap = [&](uint64_t Bits) { return RtVal::fromUInt(Bits, Ity.ByteSize); };
  auto checkedSigned = [&](__int128 V) -> RtVal {
    if (V < Ity.minVal() || V > static_cast<__int128>(Ity.maxVal()))
      return UB("signed integer overflow");
    return RtVal::fromInt(Ity, static_cast<int64_t>(V));
  };

  switch (E.Op) {
  case BinOpKind::Add:
    if (Ity.Signed)
      return checkedSigned(static_cast<__int128>(A) + B);
    return wrap(UA + UB_);
  case BinOpKind::Sub:
    if (Ity.Signed)
      return checkedSigned(static_cast<__int128>(A) - B);
    return wrap(UA - UB_);
  case BinOpKind::Mul:
    if (Ity.Signed)
      return checkedSigned(static_cast<__int128>(A) * B);
    return wrap(UA * UB_);
  case BinOpKind::Div:
    if (B == 0)
      return UB("division by zero");
    if (Ity.Signed) {
      if (A == Ity.minVal() && B == -1)
        return UB("signed division overflow");
      return RtVal::fromInt(Ity, A / B);
    }
    return wrap(UA / UB_);
  case BinOpKind::Mod:
    if (B == 0)
      return UB("modulo by zero");
    if (Ity.Signed) {
      if (A == Ity.minVal() && B == -1)
        return UB("signed modulo overflow");
      return RtVal::fromInt(Ity, A % B);
    }
    return wrap(UA % UB_);
  case BinOpKind::BitAnd:
    return wrap(UA & UB_);
  case BinOpKind::BitOr:
    return wrap(UA | UB_);
  case BinOpKind::BitXor:
    return wrap(UA ^ UB_);
  case BinOpKind::Shl:
  case BinOpKind::Shr: {
    if (B < 0 || static_cast<uint64_t>(B) >= Ity.bits())
      return UB("shift amount out of range");
    if (E.Op == BinOpKind::Shl) {
      // Caesium gives signed left shift C's UB semantics: a negative left
      // operand or an unrepresentable result is UB, exactly like the
      // checked treatment of +, -, * above — not unsigned wrap.
      if (Ity.Signed) {
        if (A < 0)
          return UB("left shift of a negative value");
        return checkedSigned(static_cast<__int128>(A) << B);
      }
      return wrap(UA << B);
    }
    if (Ity.Signed)
      return RtVal::fromInt(Ity, A >> B);
    return wrap(UA >> B);
  }
  case BinOpKind::EqOp:
    return RtVal::fromInt(intI32(), A == B ? 1 : 0);
  case BinOpKind::NeOp:
    return RtVal::fromInt(intI32(), A != B ? 1 : 0);
  case BinOpKind::LtOp:
    return RtVal::fromInt(intI32(),
                          (Ity.Signed ? A < B : UA < UB_) ? 1 : 0);
  case BinOpKind::LeOp:
    return RtVal::fromInt(intI32(),
                          (Ity.Signed ? A <= B : UA <= UB_) ? 1 : 0);
  case BinOpKind::GtOp:
    return RtVal::fromInt(intI32(),
                          (Ity.Signed ? A > B : UA > UB_) ? 1 : 0);
  case BinOpKind::GeOp:
    return RtVal::fromInt(intI32(),
                          (Ity.Signed ? A >= B : UA >= UB_) ? 1 : 0);
  default:
    return UB("unsupported binary operator");
  }
}

//===----------------------------------------------------------------------===//
// Builtins
//===----------------------------------------------------------------------===//

bool Machine::handleBuiltin(Thread &T, const std::string &Name,
                            const std::vector<RtVal> &Args, RtVal &Out,
                            bool &Blocked) {
  Blocked = false;
  // Program definitions shadow the runtime builtins.
  if (Prog.function(Name))
    return false;
  if (Name == "rc_spawn") {
    if (Args.size() != 2 || !Args[0].isPtr()) {
      raiseUB("rc_spawn expects (function pointer, argument)");
      return true;
    }
    auto FnName = Mem.functionAt(Args[0].Loc);
    const Function *F = FnName ? Prog.function(*FnName) : nullptr;
    if (!F) {
      raiseUB("rc_spawn: first argument is not a function pointer");
      return true;
    }
    Thread Child;
    Child.Id = static_cast<int>(Threads.size());
    Child.VC = T.VC;
    if (static_cast<size_t>(Child.Id) >= Child.VC.size())
      Child.VC.resize(Child.Id + 1, 0);
    Child.VC[Child.Id] = 1;
    T.VC[T.Id]++;
    pushFrame(Child, F, {Args[1]});
    int ChildId = Child.Id;
    Threads.push_back(std::move(Child));
    Out = RtVal::fromInt(intI32(), ChildId);
    return true;
  }
  if (Name == "rc_join") {
    if (Args.size() != 1 || !Args[0].isInt()) {
      raiseUB("rc_join expects a thread id");
      return true;
    }
    int Target = static_cast<int>(Args[0].asSigned());
    if (Target < 0 || static_cast<size_t>(Target) >= Threads.size()) {
      raiseUB("rc_join: invalid thread id");
      return true;
    }
    if (Threads[Target].State != ThreadState::Done) {
      T.State = ThreadState::BlockedJoin;
      T.JoinTarget = Target;
      Blocked = true;
      return true;
    }
    // Join synchronizes: inherit the child's clock.
    vcJoin(T.VC, Threads[Target].VC);
    Out = RtVal::fromInt(intI32(), 0);
    return true;
  }
  if (Name == "rc_alloc") {
    if (Args.size() != 1 || !Args[0].isInt()) {
      raiseUB("rc_alloc expects a size");
      return true;
    }
    Out = RtVal::ptr(Mem.allocate(Args[0].asUnsigned(), AllocKind::Heap,
                                  "rc_alloc"));
    return true;
  }
  if (Name == "rc_free") {
    if (Args.size() != 1 || !Args[0].isPtr() || Args[0].Loc.Off != 0 ||
        !Mem.deallocate(Args[0].Loc.Alloc)) {
      raiseUB("rc_free of an invalid pointer");
      return true;
    }
    Out = RtVal::fromInt(intI32(), 0);
    return true;
  }
  if (Name == "rc_assert") {
    if (Args.size() != 1 || !Args[0].isInt()) {
      raiseUB("rc_assert on a non-integer value");
      return true;
    }
    if (Args[0].Bits == 0) {
      raiseUB("rc_assert failure");
      return true;
    }
    Out = RtVal::fromInt(intI32(), 0);
    return true;
  }
  return false;
}

//===----------------------------------------------------------------------===//
// Node computation
//===----------------------------------------------------------------------===//

void Machine::computeTop(Thread &T) {
  CallFrame &F = T.Stack.back();
  EvalItem &Top = F.Eval.back();
  const Expr &E = *Top.E;

  switch (E.K) {
  case ExprKind::Const:
    deliver(T, E.Val);
    return;
  case ExprKind::AddrLocal: {
    auto It = F.Slots.find(E.Name);
    if (It == F.Slots.end()) {
      raiseUB("reference to unknown local '" + E.Name + "'", E.Loc);
      return;
    }
    deliver(T, RtVal::ptr(It->second));
    return;
  }
  case ExprKind::AddrGlobal: {
    auto It = GlobalAddrs.find(E.Name);
    if (It == GlobalAddrs.end()) {
      raiseUB("reference to unknown global '" + E.Name + "'", E.Loc);
      return;
    }
    deliver(T, RtVal::ptr(It->second));
    return;
  }
  case ExprKind::BinOp: {
    RtVal R = evalBinOp(E, Top.Vals[0], Top.Vals[1]);
    if (Halted)
      return;
    deliver(T, R);
    return;
  }
  case ExprKind::UnOp: {
    RtVal R = evalUnOp(E, Top.Vals[0]);
    if (Halted)
      return;
    deliver(T, R);
    return;
  }
  case ExprKind::Use: {
    if (!Top.Vals[0].isPtr()) {
      raiseUB("load through a non-pointer value", E.Loc);
      return;
    }
    RtVal R = memLoad(T, E, Top.Vals[0].Loc);
    if (Halted)
      return;
    deliver(T, R);
    return;
  }
  case ExprKind::Store: {
    if (!Top.Vals[0].isPtr()) {
      raiseUB("store through a non-pointer value", E.Loc);
      return;
    }
    memStore(T, E, Top.Vals[0].Loc, Top.Vals[1]);
    if (Halted)
      return;
    deliver(T, Top.Vals[1]);
    return;
  }
  case ExprKind::CAS: {
    if (!Top.Vals[0].isPtr() || !Top.Vals[1].isPtr()) {
      raiseUB("CAS on non-pointer operands", E.Loc);
      return;
    }
    MemLoc Atom = Top.Vals[0].Loc, Exp = Top.Vals[1].Loc;
    // Expected value: non-atomic read-modify-write on the caller's slot.
    std::string Race1 = Races.onAccess(T.Id, T.VC, Exp, E.AccessSize,
                                       /*IsWrite=*/false, /*Atomic=*/false);
    if (!Race1.empty()) {
      raiseUB(Race1, E.Loc);
      return;
    }
    MemResult ExpR = Mem.load(Exp, E.AccessSize);
    if (!ExpR.Ok) {
      raiseUB(ExpR.UB, E.Loc);
      return;
    }
    syncSC(T);
    std::string Race2 = Races.onAccess(T.Id, T.VC, Atom, E.AccessSize,
                                       /*IsWrite=*/true, /*Atomic=*/true);
    if (!Race2.empty()) {
      raiseUB(Race2, E.Loc);
      return;
    }
    MemResult AtomR = Mem.load(Atom, E.AccessSize);
    if (!AtomR.Ok) {
      raiseUB(AtomR.UB, E.Loc);
      return;
    }
    if (AtomR.Val.isPoison() || ExpR.Val.isPoison()) {
      raiseUB("CAS on uninitialized value", E.Loc);
      return;
    }
    bool Equal = AtomR.Val.Bits == ExpR.Val.Bits;
    if (Equal) {
      MemResult W = Mem.store(Atom, Top.Vals[2], E.AccessSize);
      if (!W.Ok) {
        raiseUB(W.UB, E.Loc);
        return;
      }
    } else {
      std::string Race3 = Races.onAccess(T.Id, T.VC, Exp, E.AccessSize,
                                         /*IsWrite=*/true, /*Atomic=*/false);
      if (!Race3.empty()) {
        raiseUB(Race3, E.Loc);
        return;
      }
      MemResult W = Mem.store(Exp, AtomR.Val, E.AccessSize);
      if (!W.Ok) {
        raiseUB(W.UB, E.Loc);
        return;
      }
    }
    deliver(T, RtVal::fromInt(intI32(), Equal ? 1 : 0));
    return;
  }
  case ExprKind::Call: {
    if (!Top.Vals[0].isPtr()) {
      raiseUB("call through a non-pointer value", E.Loc);
      return;
    }
    auto FnName = Mem.functionAt(Top.Vals[0].Loc);
    if (!FnName) {
      raiseUB("call through a non-function pointer", E.Loc);
      return;
    }
    std::vector<RtVal> Args(Top.Vals.begin() + 1, Top.Vals.end());
    RtVal Out;
    bool Blocked = false;
    if (handleBuiltin(T, *FnName, Args, Out, Blocked)) {
      if (Halted || Blocked)
        return;
      deliver(T, Out);
      return;
    }
    const Function *Callee = Prog.function(*FnName);
    if (!Callee) {
      raiseUB("call to undefined function '" + *FnName + "'", E.Loc);
      return;
    }
    Top.Awaiting = true;
    pushFrame(T, Callee, Args);
    return;
  }
  }
}
