//===- Value.h - Runtime values and memory bytes ---------------*- C++ -*-===//
//
// Part of RefinedC++, a C++ reproduction of the RefinedC verifier (PLDI'21).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runtime values of the Caesium semantics and their byte-level memory
/// representation. Following CompCert's memval (which Caesium's memory model
/// is roughly based on, Section 3), each memory byte is either poison
/// (uninitialized), a raw byte, or a pointer fragment carrying provenance.
/// Values decode from byte sequences at loads and encode at stores, so
/// uninitialized memory, padding, and representation-byte access behave
/// faithfully.
///
//===----------------------------------------------------------------------===//

#ifndef RCC_CAESIUM_VALUE_H
#define RCC_CAESIUM_VALUE_H

#include "caesium/Layout.h"

#include <cstdint>
#include <string>
#include <vector>

namespace rcc::caesium {

/// A memory location: allocation identity (provenance) plus byte offset.
/// Allocation id 0 is the null provenance; NULL is {0, 0}.
struct MemLoc {
  uint64_t Alloc = 0;
  uint64_t Off = 0;

  bool isNull() const { return Alloc == 0 && Off == 0; }
  bool operator==(const MemLoc &O) const = default;
  std::string str() const {
    return "a" + std::to_string(Alloc) + "+" + std::to_string(Off);
  }
};

enum class ValKind : uint8_t {
  Poison, ///< result of reading uninitialized memory, UB-adjacent uses trap
  Int,    ///< an integer of a known byte size (bits stored 2's complement)
  Ptr,    ///< a pointer (includes NULL)
};

/// A runtime value.
struct RtVal {
  ValKind K = ValKind::Poison;
  uint64_t Bits = 0;   ///< for Int: raw bits, truncated to Size bytes
  uint8_t Size = 0;    ///< for Int: byte size
  MemLoc Loc;          ///< for Ptr

  static RtVal poison() { return RtVal(); }
  static RtVal fromUInt(uint64_t Bits, uint8_t Size) {
    RtVal V;
    V.K = ValKind::Int;
    V.Size = Size;
    V.Bits = Size >= 8 ? Bits : (Bits & ((1ull << (8 * Size)) - 1));
    return V;
  }
  static RtVal fromInt(IntType Ity, int64_t V) {
    return fromUInt(static_cast<uint64_t>(V), Ity.ByteSize);
  }
  static RtVal ptr(MemLoc L) {
    RtVal V;
    V.K = ValKind::Ptr;
    V.Loc = L;
    return V;
  }
  static RtVal null() { return ptr(MemLoc{0, 0}); }

  bool isPoison() const { return K == ValKind::Poison; }
  bool isInt() const { return K == ValKind::Int; }
  bool isPtr() const { return K == ValKind::Ptr; }
  bool isNullPtr() const { return isPtr() && Loc.isNull(); }

  /// Signed interpretation at the stored size.
  int64_t asSigned() const {
    assert(isInt() && "asSigned on non-integer");
    if (Size >= 8)
      return static_cast<int64_t>(Bits);
    uint64_t SignBit = 1ull << (8 * Size - 1);
    if (Bits & SignBit)
      return static_cast<int64_t>(Bits | ~((1ull << (8 * Size)) - 1));
    return static_cast<int64_t>(Bits);
  }
  uint64_t asUnsigned() const {
    assert(isInt() && "asUnsigned on non-integer");
    return Bits;
  }
  /// Interprets per \p Ity's signedness as a mathematical value.
  int64_t interp(IntType Ity) const {
    return Ity.Signed ? asSigned() : static_cast<int64_t>(asUnsigned());
  }

  std::string str() const;
};

enum class ByteKind : uint8_t { Poison, Raw, PtrFrag };

/// One byte of memory.
struct MemByte {
  ByteKind K = ByteKind::Poison;
  uint8_t B = 0;   ///< for Raw
  MemLoc P;        ///< for PtrFrag: the pointer this byte is a fragment of
  uint8_t Idx = 0; ///< for PtrFrag: which of the PtrBytes fragments
};

/// Encodes \p V into \p Size bytes (must equal the value's size for ints and
/// PtrBytes for pointers; poison encodes as poison bytes).
std::vector<MemByte> encodeValue(const RtVal &V, uint64_t Size);

/// Decodes \p Size bytes into a value. Poison or mixed representations decode
/// to poison (using a pointer's representation bytes as an integer is not
/// given a value, matching the absence of integer-pointer casts).
RtVal decodeValue(const MemByte *Bytes, uint64_t Size);

} // namespace rcc::caesium

#endif // RCC_CAESIUM_VALUE_H
