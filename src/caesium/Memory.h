//===- Memory.h - The Caesium byte-level memory ----------------*- C++ -*-===//
//
// Part of RefinedC++, a C++ reproduction of the RefinedC verifier (PLDI'21).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The low-level memory of the Caesium semantics: a map from allocation ids
/// to byte arrays. Loads, stores, allocation and deallocation report
/// undefined behaviour (out-of-bounds access, access to dead allocations,
/// calls through data pointers) via MemResult rather than crashing, so the
/// interpreter can surface UB as a verdict.
///
//===----------------------------------------------------------------------===//

#ifndef RCC_CAESIUM_MEMORY_H
#define RCC_CAESIUM_MEMORY_H

#include "caesium/Value.h"

#include <optional>
#include <string>
#include <unordered_map>

namespace rcc::caesium {

enum class AllocKind : uint8_t { Heap, Stack, Global, Function };

struct Allocation {
  uint64_t Size = 0;
  AllocKind Kind = AllocKind::Heap;
  bool Alive = true;
  std::string Name; ///< for diagnostics; function name for Function allocs
  std::vector<MemByte> Bytes;
};

/// Result of a memory operation: either a value or a UB description.
struct MemResult {
  bool Ok = true;
  RtVal Val;
  std::string UB;

  static MemResult ok(RtVal V) {
    MemResult R;
    R.Val = V;
    return R;
  }
  static MemResult ub(std::string Msg) {
    MemResult R;
    R.Ok = false;
    R.UB = std::move(Msg);
    return R;
  }
};

class Memory {
public:
  /// Allocates \p Size poison-initialized bytes.
  MemLoc allocate(uint64_t Size, AllocKind Kind, const std::string &Name);

  /// Registers a function "allocation" (addressable, not readable).
  MemLoc registerFunction(const std::string &Name);

  /// Marks an allocation dead. Returns false for unknown/already-dead ids.
  bool deallocate(uint64_t AllocId);

  /// Loads \p Size bytes at \p L.
  MemResult load(MemLoc L, uint64_t Size) const;

  /// Stores \p V (encoded to \p Size bytes) at \p L.
  MemResult store(MemLoc L, const RtVal &V, uint64_t Size);

  /// Byte-wise copy (used for composite assignment); faithfully copies
  /// poison and pointer fragments.
  MemResult copy(MemLoc Dst, MemLoc Src, uint64_t Size);

  const Allocation *allocation(uint64_t Id) const {
    auto It = Allocs.find(Id);
    return It == Allocs.end() ? nullptr : &It->second;
  }

  /// True if [L, L+Size) is within a live, data allocation.
  bool inBounds(MemLoc L, uint64_t Size) const;

  /// If \p L points at a function allocation at offset 0, its name.
  std::optional<std::string> functionAt(MemLoc L) const;

  uint64_t numAllocations() const { return Allocs.size(); }
  uint64_t liveBytes() const;

private:
  std::unordered_map<uint64_t, Allocation> Allocs;
  uint64_t NextId = 1;
};

} // namespace rcc::caesium

#endif // RCC_CAESIUM_MEMORY_H
