//===- Layout.cpp ---------------------------------------------------------===//
//
// Part of RefinedC++, a C++ reproduction of the RefinedC verifier (PLDI'21).
//
//===----------------------------------------------------------------------===//

#include "caesium/Layout.h"

using namespace rcc::caesium;

static uint64_t alignUp(uint64_t X, uint64_t A) {
  assert(A != 0 && (A & (A - 1)) == 0 && "alignment must be a power of two");
  return (X + A - 1) & ~(A - 1);
}

void StructLayout::computeLayout() {
  uint64_t Off = 0;
  Align = 1;
  for (FieldLayout &F : Fields) {
    Off = alignUp(Off, F.Ly.Align);
    F.Offset = Off;
    Off += F.Ly.Size;
    if (F.Ly.Align > Align)
      Align = F.Ly.Align;
  }
  Size = alignUp(Off, Align);
  if (Size == 0)
    Size = 1; // empty structs still occupy storage
}
