//===- RaceDetector.cpp ---------------------------------------------------===//
//
// Part of RefinedC++, a C++ reproduction of the RefinedC verifier (PLDI'21).
//
//===----------------------------------------------------------------------===//

#include "caesium/RaceDetector.h"

using namespace rcc::caesium;

void rcc::caesium::vcJoin(VectorClock &A, const VectorClock &B) {
  if (B.size() > A.size())
    A.resize(B.size(), 0);
  for (size_t I = 0; I < B.size(); ++I)
    A[I] = std::max(A[I], B[I]);
}

bool rcc::caesium::vcOrdered(int Tid, uint64_t Clock, const VectorClock &VC) {
  if (static_cast<size_t>(Tid) >= VC.size())
    return Clock == 0;
  return Clock <= VC[Tid];
}

std::string RaceDetector::onAccess(int Tid, const VectorClock &VC, MemLoc L,
                                   uint64_t Size, bool IsWrite, bool Atomic) {
  for (uint64_t I = 0; I < Size; ++I) {
    ByteState &BS = Bytes[{L.Alloc, L.Off + I}];

    // Conflict with the last write: needed for both reads and writes.
    if (BS.LastWrite.valid() && BS.LastWrite.Tid != Tid &&
        !vcOrdered(BS.LastWrite.Tid, BS.LastWrite.Clock, VC)) {
      bool BothAtomic = Atomic && BS.LastWrite.Atomic;
      if (!BothAtomic)
        return "data race: " + std::string(IsWrite ? "write" : "read") +
               " at " + MemLoc{L.Alloc, L.Off + I}.str() +
               " conflicts with unsynchronized write by thread " +
               std::to_string(BS.LastWrite.Tid);
    }

    if (IsWrite) {
      // Conflict with unordered reads.
      for (const auto &[RTid, Entry] : BS.Reads) {
        auto [Clock, RAtomic] = Entry;
        if (RTid == Tid || vcOrdered(RTid, Clock, VC))
          continue;
        if (Atomic && RAtomic)
          continue;
        return "data race: write at " + MemLoc{L.Alloc, L.Off + I}.str() +
               " conflicts with unsynchronized read by thread " +
               std::to_string(RTid);
      }
      // A non-racy write subsumes prior epochs (FastTrack).
      BS.Reads.clear();
      BS.LastWrite = {Tid, VC.size() > static_cast<size_t>(Tid) ? VC[Tid] : 0,
                      Atomic};
    } else {
      auto &Slot = BS.Reads[Tid];
      Slot.first = VC.size() > static_cast<size_t>(Tid) ? VC[Tid] : 0;
      Slot.second = Atomic;
    }
  }
  return "";
}
