//===- Value.cpp ----------------------------------------------------------===//
//
// Part of RefinedC++, a C++ reproduction of the RefinedC verifier (PLDI'21).
//
//===----------------------------------------------------------------------===//

#include "caesium/Value.h"

using namespace rcc::caesium;

std::string RtVal::str() const {
  switch (K) {
  case ValKind::Poison:
    return "poison";
  case ValKind::Int:
    return std::to_string(asSigned()) + ":i" + std::to_string(8 * Size);
  case ValKind::Ptr:
    return isNullPtr() ? "NULL" : Loc.str();
  }
  return "?";
}

std::vector<MemByte> rcc::caesium::encodeValue(const RtVal &V, uint64_t Size) {
  std::vector<MemByte> Out(Size);
  switch (V.K) {
  case ValKind::Poison:
    return Out; // all poison
  case ValKind::Int: {
    assert(Size == V.Size && "integer store size mismatch");
    for (uint64_t I = 0; I < Size; ++I) {
      Out[I].K = ByteKind::Raw;
      Out[I].B = static_cast<uint8_t>((V.Bits >> (8 * I)) & 0xff);
    }
    return Out;
  }
  case ValKind::Ptr: {
    assert(Size == PtrBytes && "pointer store size mismatch");
    for (uint64_t I = 0; I < Size; ++I) {
      Out[I].K = ByteKind::PtrFrag;
      Out[I].P = V.Loc;
      Out[I].Idx = static_cast<uint8_t>(I);
    }
    return Out;
  }
  }
  return Out;
}

RtVal rcc::caesium::decodeValue(const MemByte *Bytes, uint64_t Size) {
  bool AllRaw = true, AllFrag = Size == PtrBytes;
  for (uint64_t I = 0; I < Size; ++I) {
    if (Bytes[I].K != ByteKind::Raw)
      AllRaw = false;
    if (Bytes[I].K != ByteKind::PtrFrag || Bytes[I].Idx != I ||
        !(Bytes[I].P == Bytes[0].P))
      AllFrag = false;
  }
  if (AllRaw) {
    uint64_t Bits = 0;
    for (uint64_t I = 0; I < Size; ++I)
      Bits |= uint64_t(Bytes[I].B) << (8 * I);
    return RtVal::fromUInt(Bits, static_cast<uint8_t>(Size));
  }
  if (AllFrag)
    return RtVal::ptr(Bytes[0].P);
  return RtVal::poison();
}
