//===- Memory.cpp ---------------------------------------------------------===//
//
// Part of RefinedC++, a C++ reproduction of the RefinedC verifier (PLDI'21).
//
//===----------------------------------------------------------------------===//

#include "caesium/Memory.h"

using namespace rcc::caesium;

MemLoc Memory::allocate(uint64_t Size, AllocKind Kind,
                        const std::string &Name) {
  uint64_t Id = NextId++;
  Allocation A;
  A.Size = Size;
  A.Kind = Kind;
  A.Name = Name;
  A.Bytes.resize(Size); // poison-initialized
  Allocs.emplace(Id, std::move(A));
  return MemLoc{Id, 0};
}

MemLoc Memory::registerFunction(const std::string &Name) {
  uint64_t Id = NextId++;
  Allocation A;
  A.Size = 0;
  A.Kind = AllocKind::Function;
  A.Name = Name;
  Allocs.emplace(Id, std::move(A));
  return MemLoc{Id, 0};
}

bool Memory::deallocate(uint64_t AllocId) {
  auto It = Allocs.find(AllocId);
  if (It == Allocs.end() || !It->second.Alive)
    return false;
  It->second.Alive = false;
  It->second.Bytes.clear();
  return true;
}

bool Memory::inBounds(MemLoc L, uint64_t Size) const {
  const Allocation *A = allocation(L.Alloc);
  if (!A || !A->Alive || A->Kind == AllocKind::Function)
    return false;
  return L.Off <= A->Size && Size <= A->Size - L.Off;
}

std::optional<std::string> Memory::functionAt(MemLoc L) const {
  const Allocation *A = allocation(L.Alloc);
  if (!A || A->Kind != AllocKind::Function || L.Off != 0)
    return std::nullopt;
  return A->Name;
}

MemResult Memory::load(MemLoc L, uint64_t Size) const {
  if (L.isNull())
    return MemResult::ub("load through NULL pointer");
  if (!inBounds(L, Size))
    return MemResult::ub("out-of-bounds or use-after-free load at " +
                         L.str());
  const Allocation &A = Allocs.at(L.Alloc);
  return MemResult::ok(decodeValue(A.Bytes.data() + L.Off, Size));
}

MemResult Memory::store(MemLoc L, const RtVal &V, uint64_t Size) {
  if (L.isNull())
    return MemResult::ub("store through NULL pointer");
  if (!inBounds(L, Size))
    return MemResult::ub("out-of-bounds or use-after-free store at " +
                         L.str());
  std::vector<MemByte> Enc = encodeValue(V, Size);
  Allocation &A = Allocs.at(L.Alloc);
  for (uint64_t I = 0; I < Size; ++I)
    A.Bytes[L.Off + I] = Enc[I];
  return MemResult::ok(RtVal::poison());
}

MemResult Memory::copy(MemLoc Dst, MemLoc Src, uint64_t Size) {
  if (!inBounds(Src, Size))
    return MemResult::ub("out-of-bounds copy source at " + Src.str());
  if (!inBounds(Dst, Size))
    return MemResult::ub("out-of-bounds copy destination at " + Dst.str());
  std::vector<MemByte> Tmp(Allocs.at(Src.Alloc).Bytes.begin() + Src.Off,
                           Allocs.at(Src.Alloc).Bytes.begin() + Src.Off +
                               Size);
  Allocation &D = Allocs.at(Dst.Alloc);
  for (uint64_t I = 0; I < Size; ++I)
    D.Bytes[Dst.Off + I] = Tmp[I];
  return MemResult::ok(RtVal::poison());
}

uint64_t Memory::liveBytes() const {
  uint64_t N = 0;
  for (const auto &[Id, A] : Allocs)
    if (A.Alive)
      N += A.Size;
  return N;
}
