//===- Ast.h - The Caesium core language ------------------------*- C++ -*-===//
//
// Part of RefinedC++, a C++ reproduction of the RefinedC verifier (PLDI'21).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The control-flow-graph-based core language of Section 3: functions are
/// sets of blocks ending in explicit terminators (goto/conditional
/// goto/switch/return), expressions carry explicit integer types, memory
/// orders, and access sizes, and all locals are function-scoped stack
/// allocations accessed through their addresses (the address-of operator on
/// locals is primitive). The front end lowers annotated C to this IR; the
/// interpreter executes it; the RefinedC type checker types it.
///
//===----------------------------------------------------------------------===//

#ifndef RCC_CAESIUM_AST_H
#define RCC_CAESIUM_AST_H

#include "caesium/Layout.h"
#include "caesium/Value.h"
#include "support/SourceLoc.h"

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace rcc::caesium {

enum class BinOpKind : uint8_t {
  Add,
  Sub,
  Mul,
  Div,
  Mod,
  BitAnd,
  BitOr,
  BitXor,
  Shl,
  Shr,
  EqOp,
  NeOp,
  LtOp,
  LeOp,
  GtOp,
  GeOp,
  PtrAdd,  ///< ptr + int, scaled by ElemSize
  PtrSub,  ///< ptr - int, scaled by ElemSize
  PtrDiff, ///< ptr - ptr (same allocation), in units of ElemSize
  PtrEq,
  PtrNe,
};

const char *binOpName(BinOpKind K);

enum class UnOpKind : uint8_t {
  Neg,
  LogicalNot,
  BitNot,
  Cast, ///< integer resize/re-sign to `To`
};

enum class MemOrder : uint8_t { NonAtomic, SeqCst };

enum class ExprKind : uint8_t {
  Const,      ///< a literal RtVal
  AddrLocal,  ///< address of a local variable (primitive, Section 3)
  AddrGlobal, ///< address of a global or a function
  BinOp,      ///< Args = {lhs, rhs}
  UnOp,       ///< Args = {operand}
  Use,        ///< load: Args = {address}; AccessSize bytes, Ord
  Store,      ///< Args = {address, value}; evaluates to the stored value
  CAS,        ///< Args = {atom addr, expected addr, desired}; SC, Section 6
  Call,       ///< Args = {callee, args...}
};

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// A Caesium expression. One node type with a kind tag keeps the small-step
/// interpreter's evaluation-stack machinery uniform.
struct Expr {
  ExprKind K;
  rcc::SourceLoc Loc;

  // Payloads (used per kind).
  RtVal Val;                ///< Const
  std::string Name;         ///< AddrLocal / AddrGlobal
  BinOpKind Op = BinOpKind::Add;
  UnOpKind UOp = UnOpKind::Neg;
  IntType Ity;              ///< operating integer type
  IntType To;               ///< Cast target
  uint64_t ElemSize = 1;    ///< PtrAdd/PtrSub/PtrDiff scale
  uint64_t AccessSize = 0;  ///< Use/Store/CAS byte width
  MemOrder Ord = MemOrder::NonAtomic;

  std::vector<ExprPtr> Args;

  explicit Expr(ExprKind K) : K(K) {}
  std::string str() const;
};

ExprPtr mkConst(RtVal V, rcc::SourceLoc Loc = {});
ExprPtr mkConstInt(IntType Ity, int64_t V, rcc::SourceLoc Loc = {});
ExprPtr mkNullPtr(rcc::SourceLoc Loc = {});
ExprPtr mkAddrLocal(const std::string &Name, rcc::SourceLoc Loc = {});
ExprPtr mkAddrGlobal(const std::string &Name, rcc::SourceLoc Loc = {});
ExprPtr mkBinOp(BinOpKind Op, IntType Ity, ExprPtr L, ExprPtr R,
                rcc::SourceLoc Loc = {});
ExprPtr mkPtrOp(BinOpKind Op, uint64_t ElemSize, ExprPtr L, ExprPtr R,
                rcc::SourceLoc Loc = {});
ExprPtr mkUnOp(UnOpKind Op, IntType Ity, ExprPtr A, rcc::SourceLoc Loc = {});
ExprPtr mkCast(IntType From, IntType To, ExprPtr A, rcc::SourceLoc Loc = {});
ExprPtr mkUse(uint64_t Size, ExprPtr Addr, MemOrder Ord = MemOrder::NonAtomic,
              rcc::SourceLoc Loc = {});
ExprPtr mkStore(uint64_t Size, ExprPtr Addr, ExprPtr Value,
                MemOrder Ord = MemOrder::NonAtomic, rcc::SourceLoc Loc = {});
ExprPtr mkCAS(uint64_t Size, ExprPtr Atom, ExprPtr Expected, ExprPtr Desired,
              rcc::SourceLoc Loc = {});
ExprPtr mkCall(ExprPtr Callee, std::vector<ExprPtr> Args,
               rcc::SourceLoc Loc = {});

enum class StmtKind : uint8_t {
  ExprS,    ///< evaluate for effect
  Return,   ///< Args: optional value expr
  Goto,     ///< unconditional jump to Target1
  CondGoto, ///< jump to Target1 if E != 0 else Target2
  Switch,   ///< jump per SwitchCases, else DefaultTarget
  UBStmt,   ///< explicit stuck state (e.g. front-end-detected UB)
};

struct Stmt {
  StmtKind K = StmtKind::ExprS;
  rcc::SourceLoc Loc;
  ExprPtr E; ///< ExprS / Return (may be null for void return) / CondGoto / Switch
  unsigned Target1 = 0;
  unsigned Target2 = 0;
  std::vector<std::pair<int64_t, unsigned>> SwitchCases;
  unsigned DefaultTarget = 0;
  std::string Msg; ///< UBStmt description

  bool isTerminator() const {
    return K != StmtKind::ExprS;
  }
};

/// A basic block: straight-line statements ending in one terminator. A block
/// may carry an annotation id (index into the front end's loop-invariant
/// table) marking it as a cut point for verification.
struct Block {
  std::vector<Stmt> Stmts;
  int AnnotId = -1;
};

/// A Caesium function: parameters and locals are stack slots; the body is a
/// CFG with entry block 0.
struct Function {
  std::string Name;
  rcc::SourceLoc Loc;
  std::vector<std::pair<std::string, uint64_t>> Params; ///< name, byte size
  std::vector<std::pair<std::string, uint64_t>> Locals;
  std::vector<Block> Blocks;
  uint64_t RetSize = 0; ///< return value byte width (0 for void)

  uint64_t slotSize(const std::string &N) const {
    for (const auto &[PN, Sz] : Params)
      if (PN == N)
        return Sz;
    for (const auto &[LN, Sz] : Locals)
      if (LN == N)
        return Sz;
    return 0;
  }
};

struct GlobalDef {
  std::string Name;
  uint64_t Size = 0;
  /// Optional initial integer value stored at offset 0 (Size bytes); globals
  /// are otherwise poison-initialized, matching C's uninitialized locals.
  bool HasInit = false;
  RtVal Init;
};

/// A whole program.
struct Program {
  std::map<std::string, std::unique_ptr<Function>> Functions;
  std::vector<GlobalDef> Globals;

  Function *function(const std::string &Name) {
    auto It = Functions.find(Name);
    return It == Functions.end() ? nullptr : It->second.get();
  }
  const Function *function(const std::string &Name) const {
    auto It = Functions.find(Name);
    return It == Functions.end() ? nullptr : It->second.get();
  }
};

} // namespace rcc::caesium

#endif // RCC_CAESIUM_AST_H
