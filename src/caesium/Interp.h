//===- Interp.h - Small-step interpreter for Caesium -----------*- C++ -*-===//
//
// Part of RefinedC++, a C++ reproduction of the RefinedC verifier (PLDI'21).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An executable operational semantics for Caesium. The machine runs
/// programs small-step (one memory access or primitive operation per step)
/// with a seeded randomized scheduler over threads, so that the concurrent
/// case studies can be tested under many interleavings. Undefined behaviour
/// — out-of-bounds access, use of poison, signed overflow, division by zero,
/// invalid pointer arithmetic, data races — halts the machine with a
/// description.
///
/// Built-in functions (for tests and examples):
///   rc_spawn(fn_ptr, arg)  -> thread id     rc_join(tid)
///   rc_alloc(n) -> void*                    rc_free(p)
///   rc_assert(cond)        (UB when cond == 0)
///
/// This interpreter is the substitute for the paper's Iris adequacy theorem:
/// programs verified by the type checker are executed here to confirm the
/// absence of UB and the validity of their specs (see DESIGN.md).
///
//===----------------------------------------------------------------------===//

#ifndef RCC_CAESIUM_INTERP_H
#define RCC_CAESIUM_INTERP_H

#include "caesium/Ast.h"
#include "caesium/Memory.h"
#include "caesium/RaceDetector.h"

#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

namespace rcc::caesium {

/// Final verdict of a machine run.
struct ExecResult {
  enum class Code { Ok, UB, Timeout, Deadlock, Error };
  Code C = Code::Ok;
  std::string Message;
  rcc::SourceLoc Loc;
  RtVal MainRet;

  bool ok() const { return C == Code::Ok; }
};

/// The Caesium abstract machine.
class Machine {
public:
  explicit Machine(const Program &P, uint64_t Seed = 0);

  /// Runs \p EntryFn to completion (all threads joined or main returned).
  ExecResult run(const std::string &EntryFn, std::vector<RtVal> Args,
                 uint64_t MaxSteps = 2'000'000);

  Memory &memory() { return Mem; }
  const Program &program() const { return Prog; }
  uint64_t stepsTaken() const { return Steps; }

  /// Looks up the address of a global (or function) by name.
  MemLoc globalAddr(const std::string &Name) const;

private:
  struct EvalItem {
    const Expr *E = nullptr;
    unsigned Next = 0; ///< next child to evaluate
    bool Awaiting = false; ///< a callee frame is computing our value
    std::vector<RtVal> Vals;
  };
  struct CallFrame {
    const Function *F = nullptr;
    std::unordered_map<std::string, MemLoc> Slots;
    unsigned Block = 0;
    unsigned Index = 0;
    std::vector<EvalItem> Eval;
  };
  enum class ThreadState { Runnable, BlockedJoin, Done };
  struct Thread {
    int Id = 0;
    ThreadState State = ThreadState::Runnable;
    int JoinTarget = -1;
    std::vector<CallFrame> Stack;
    VectorClock VC;
    RtVal Result;
  };

  // Stepping.
  void step(Thread &T);
  void startStatement(Thread &T);
  void computeTop(Thread &T);
  void deliver(Thread &T, RtVal V);
  void finishStatement(Thread &T, RtVal V);
  void returnFromFrame(Thread &T, RtVal V);
  void pushFrame(Thread &T, const Function *F, const std::vector<RtVal> &Args);

  // Operations.
  RtVal evalBinOp(const Expr &E, RtVal L, RtVal R);
  RtVal evalUnOp(const Expr &E, RtVal A);
  RtVal memLoad(Thread &T, const Expr &E, MemLoc L);
  void memStore(Thread &T, const Expr &E, MemLoc L, RtVal V);
  bool handleBuiltin(Thread &T, const std::string &Name,
                     const std::vector<RtVal> &Args, RtVal &Out,
                     bool &Blocked);

  void raiseUB(std::string Msg, rcc::SourceLoc Loc = {});
  void syncSC(Thread &T);
  uint64_t rngNext();
  /// Unbiased draw from [0, Bound) via rejection sampling (plain
  /// `rngNext() % Bound` over-selects small values / low thread ids).
  uint64_t rngBounded(uint64_t Bound);

  const Program &Prog;
  Memory Mem;
  RaceDetector Races;
  /// deque: threads must stay address-stable while a spawned child is
  /// appended mid-step (the stepping thread holds a reference to itself).
  std::deque<Thread> Threads;
  std::unordered_map<std::string, MemLoc> GlobalAddrs;
  VectorClock SCClock;
  uint64_t RngState;
  uint64_t Steps = 0;
  bool Halted = false;
  ExecResult Result;
};

} // namespace rcc::caesium

#endif // RCC_CAESIUM_INTERP_H
