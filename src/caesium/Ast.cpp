//===- Ast.cpp ------------------------------------------------------------===//
//
// Part of RefinedC++, a C++ reproduction of the RefinedC verifier (PLDI'21).
//
//===----------------------------------------------------------------------===//

#include "caesium/Ast.h"

#include <sstream>

using namespace rcc::caesium;

const char *rcc::caesium::binOpName(BinOpKind K) {
  switch (K) {
  case BinOpKind::Add:
    return "+";
  case BinOpKind::Sub:
    return "-";
  case BinOpKind::Mul:
    return "*";
  case BinOpKind::Div:
    return "/";
  case BinOpKind::Mod:
    return "%";
  case BinOpKind::BitAnd:
    return "&";
  case BinOpKind::BitOr:
    return "|";
  case BinOpKind::BitXor:
    return "^";
  case BinOpKind::Shl:
    return "<<";
  case BinOpKind::Shr:
    return ">>";
  case BinOpKind::EqOp:
    return "==";
  case BinOpKind::NeOp:
    return "!=";
  case BinOpKind::LtOp:
    return "<";
  case BinOpKind::LeOp:
    return "<=";
  case BinOpKind::GtOp:
    return ">";
  case BinOpKind::GeOp:
    return ">=";
  case BinOpKind::PtrAdd:
    return "+p";
  case BinOpKind::PtrSub:
    return "-p";
  case BinOpKind::PtrDiff:
    return "-pp";
  case BinOpKind::PtrEq:
    return "==p";
  case BinOpKind::PtrNe:
    return "!=p";
  }
  return "?";
}

std::string Expr::str() const {
  std::ostringstream OS;
  switch (K) {
  case ExprKind::Const:
    OS << Val.str();
    break;
  case ExprKind::AddrLocal:
    OS << "&" << Name;
    break;
  case ExprKind::AddrGlobal:
    OS << "&g:" << Name;
    break;
  case ExprKind::BinOp:
    OS << "(" << Args[0]->str() << " " << binOpName(Op) << " "
       << Args[1]->str() << ")";
    break;
  case ExprKind::UnOp:
    switch (UOp) {
    case UnOpKind::Neg:
      OS << "-" << Args[0]->str();
      break;
    case UnOpKind::LogicalNot:
      OS << "!" << Args[0]->str();
      break;
    case UnOpKind::BitNot:
      OS << "~" << Args[0]->str();
      break;
    case UnOpKind::Cast:
      OS << "(" << To.str() << ")" << Args[0]->str();
      break;
    }
    break;
  case ExprKind::Use:
    OS << "use<" << AccessSize << (Ord == MemOrder::SeqCst ? ",sc" : "")
       << ">(" << Args[0]->str() << ")";
    break;
  case ExprKind::Store:
    OS << "store<" << AccessSize << (Ord == MemOrder::SeqCst ? ",sc" : "")
       << ">(" << Args[0]->str() << ", " << Args[1]->str() << ")";
    break;
  case ExprKind::CAS:
    OS << "cas<" << AccessSize << ">(" << Args[0]->str() << ", "
       << Args[1]->str() << ", " << Args[2]->str() << ")";
    break;
  case ExprKind::Call:
    OS << Args[0]->str() << "(";
    for (size_t I = 1; I < Args.size(); ++I) {
      if (I > 1)
        OS << ", ";
      OS << Args[I]->str();
    }
    OS << ")";
    break;
  }
  return OS.str();
}

ExprPtr rcc::caesium::mkConst(RtVal V, rcc::SourceLoc Loc) {
  auto E = std::make_unique<Expr>(ExprKind::Const);
  E->Val = V;
  E->Loc = Loc;
  return E;
}

ExprPtr rcc::caesium::mkConstInt(IntType Ity, int64_t V, rcc::SourceLoc Loc) {
  return mkConst(RtVal::fromInt(Ity, V), Loc);
}

ExprPtr rcc::caesium::mkNullPtr(rcc::SourceLoc Loc) {
  return mkConst(RtVal::null(), Loc);
}

ExprPtr rcc::caesium::mkAddrLocal(const std::string &Name,
                                  rcc::SourceLoc Loc) {
  auto E = std::make_unique<Expr>(ExprKind::AddrLocal);
  E->Name = Name;
  E->Loc = Loc;
  return E;
}

ExprPtr rcc::caesium::mkAddrGlobal(const std::string &Name,
                                   rcc::SourceLoc Loc) {
  auto E = std::make_unique<Expr>(ExprKind::AddrGlobal);
  E->Name = Name;
  E->Loc = Loc;
  return E;
}

ExprPtr rcc::caesium::mkBinOp(BinOpKind Op, IntType Ity, ExprPtr L, ExprPtr R,
                              rcc::SourceLoc Loc) {
  auto E = std::make_unique<Expr>(ExprKind::BinOp);
  E->Op = Op;
  E->Ity = Ity;
  E->Loc = Loc;
  E->Args.push_back(std::move(L));
  E->Args.push_back(std::move(R));
  return E;
}

ExprPtr rcc::caesium::mkPtrOp(BinOpKind Op, uint64_t ElemSize, ExprPtr L,
                              ExprPtr R, rcc::SourceLoc Loc) {
  auto E = std::make_unique<Expr>(ExprKind::BinOp);
  E->Op = Op;
  E->ElemSize = ElemSize;
  E->Loc = Loc;
  E->Args.push_back(std::move(L));
  E->Args.push_back(std::move(R));
  return E;
}

ExprPtr rcc::caesium::mkUnOp(UnOpKind Op, IntType Ity, ExprPtr A,
                             rcc::SourceLoc Loc) {
  auto E = std::make_unique<Expr>(ExprKind::UnOp);
  E->UOp = Op;
  E->Ity = Ity;
  E->Loc = Loc;
  E->Args.push_back(std::move(A));
  return E;
}

ExprPtr rcc::caesium::mkCast(IntType From, IntType To, ExprPtr A,
                             rcc::SourceLoc Loc) {
  auto E = std::make_unique<Expr>(ExprKind::UnOp);
  E->UOp = UnOpKind::Cast;
  E->Ity = From;
  E->To = To;
  E->Loc = Loc;
  E->Args.push_back(std::move(A));
  return E;
}

ExprPtr rcc::caesium::mkUse(uint64_t Size, ExprPtr Addr, MemOrder Ord,
                            rcc::SourceLoc Loc) {
  auto E = std::make_unique<Expr>(ExprKind::Use);
  E->AccessSize = Size;
  E->Ord = Ord;
  E->Loc = Loc;
  E->Args.push_back(std::move(Addr));
  return E;
}

ExprPtr rcc::caesium::mkStore(uint64_t Size, ExprPtr Addr, ExprPtr Value,
                              MemOrder Ord, rcc::SourceLoc Loc) {
  auto E = std::make_unique<Expr>(ExprKind::Store);
  E->AccessSize = Size;
  E->Ord = Ord;
  E->Loc = Loc;
  E->Args.push_back(std::move(Addr));
  E->Args.push_back(std::move(Value));
  return E;
}

ExprPtr rcc::caesium::mkCAS(uint64_t Size, ExprPtr Atom, ExprPtr Expected,
                            ExprPtr Desired, rcc::SourceLoc Loc) {
  auto E = std::make_unique<Expr>(ExprKind::CAS);
  E->AccessSize = Size;
  E->Ord = MemOrder::SeqCst;
  E->Loc = Loc;
  E->Args.push_back(std::move(Atom));
  E->Args.push_back(std::move(Expected));
  E->Args.push_back(std::move(Desired));
  return E;
}

ExprPtr rcc::caesium::mkCall(ExprPtr Callee, std::vector<ExprPtr> Args,
                             rcc::SourceLoc Loc) {
  auto E = std::make_unique<Expr>(ExprKind::Call);
  E->Loc = Loc;
  E->Args.push_back(std::move(Callee));
  for (ExprPtr &A : Args)
    E->Args.push_back(std::move(A));
  return E;
}
