//===- LspServer.h - Language Server Protocol front end --------*- C++ -*-===//
//
// Part of RefinedC++, a C++ reproduction of the RefinedC verifier (PLDI'21).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `rcc-lsp` server (DESIGN.md, "LSP server"): a JSON-RPC 2.0 endpoint
/// speaking the Language Server Protocol base protocol over stdio
/// (Content-Length framing, see support/Framing.h) that maps editor
/// document lifecycles onto the verification daemon's workspace:
///
///   didOpen   -> install the editor's buffer as the document's overlay,
///                verify it, publish diagnostics
///   didChange -> refresh the overlay (full-document sync); verification
///                waits for the save, like batch RefinedC
///   didSave   -> re-verify the document (result-store hits make this the
///                incremental path: only changed functions re-run proof
///                search) and publish fresh diagnostics — including the
///                empty publish that clears a fixed file
///   didClose  -> drop the overlay and the client's diagnostics
///
/// Verification failures arrive as typed daemon events carrying
/// rcc::Diagnostic values with 1-based half-open source ranges; the server
/// converts them to LSP's 0-based positions. Protocol-level failures use
/// the JSON-RPC error codes the spec reserves: -32700 on unparseable
/// bodies, -32002 for requests before `initialize`, -32601 for unknown
/// methods. `exit` terminates the loop with code 0 iff `shutdown` was
/// received first.
///
//===----------------------------------------------------------------------===//

#ifndef RCC_LSP_LSPSERVER_H
#define RCC_LSP_LSPSERVER_H

#include "daemon/Daemon.h"
#include "support/Json.h"

#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace rcc::lsp {

struct LspOptions {
  /// Persistent L2 cache directory (empty: in-memory L1 only).
  std::string CacheDir;
  /// GC budget for the cache directory (0 = unbounded).
  uint64_t CacheMaxBytes = 0;
  /// Concurrent verification jobs per revision (0 = all cores).
  unsigned Jobs = 1;
  /// Replay derivations through the independent proof checker.
  bool Recheck = true;
  /// Optional trace session for the daemon's revision spans.
  trace::TraceSession *Trace = nullptr;
};

/// Converts a `file://` URI to a filesystem path (percent-decoded). Returns
/// the input unchanged when it does not carry the file scheme, so plain
/// paths also work (some clients are sloppy).
std::string uriToPath(const std::string &Uri);

/// Converts a filesystem path to a `file://` URI (percent-encoding the
/// characters the RFC requires).
std::string pathToUri(const std::string &Path);

class LspServer {
public:
  explicit LspServer(LspOptions Opts);

  /// Serves the protocol until `exit`, stream EOF, or an unrecoverable
  /// framing error. Returns the process exit code: 0 iff a `shutdown`
  /// request was received before the loop ended.
  int run(std::istream &In, std::ostream &Out);

  /// Dispatches one raw JSON-RPC body (exposed for tests; run() calls this
  /// for every decoded frame). Responses and notifications are written to
  /// \p Out as framed messages.
  void handleMessage(const std::string &Body, std::ostream &Out);

  /// True once an `exit` notification was processed.
  bool exiting() const { return Exiting; }
  /// True once a `shutdown` request was processed.
  bool shutdownSeen() const { return ShutdownSeen; }

  /// The underlying verification daemon (the LSP server's workspace).
  daemon::Daemon &workspace() { return D; }

private:
  void respond(std::ostream &Out, const json::Value &Id, json::Value Result);
  void respondError(std::ostream &Out, const json::Value &Id, int Code,
                    const std::string &Message);
  void notify(std::ostream &Out, const std::string &Method,
              json::Value Params);
  /// Runs one forced check of \p Path through the daemon and publishes the
  /// resulting diagnostics (an unchanged document republishes the last
  /// known set, so a save is never left without a publish).
  void checkAndPublish(const std::string &Path, std::ostream &Out);
  void publish(const std::string &Path,
               const std::vector<rcc::Diagnostic> &Diags, std::ostream &Out);

  LspOptions O;
  daemon::Daemon D;
  bool Initialized = false;
  bool ShutdownSeen = false;
  bool Exiting = false;
  /// Last published diagnostics per document path (republished when a save
  /// did not change the content, cleared on didClose).
  std::map<std::string, std::vector<rcc::Diagnostic>> Published;
};

} // namespace rcc::lsp

#endif // RCC_LSP_LSPSERVER_H
