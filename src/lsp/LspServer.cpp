//===- LspServer.cpp - Language Server Protocol front end -----------------===//
//
// Part of RefinedC++, a C++ reproduction of the RefinedC verifier (PLDI'21).
//
//===----------------------------------------------------------------------===//

#include "lsp/LspServer.h"

#include "support/Framing.h"
#include "support/Util.h"

#include <cctype>
#include <istream>
#include <ostream>

using namespace rcc;
using namespace rcc::lsp;

//===----------------------------------------------------------------------===//
// JSON-RPC error codes (the subset rcc-lsp emits)
//===----------------------------------------------------------------------===//

static constexpr int kParseError = -32700;
static constexpr int kInvalidRequest = -32600;
static constexpr int kMethodNotFound = -32601;
static constexpr int kServerNotInitialized = -32002;

//===----------------------------------------------------------------------===//
// file:// URI mapping
//===----------------------------------------------------------------------===//

static int hexVal(char C) {
  if (C >= '0' && C <= '9')
    return C - '0';
  if (C >= 'a' && C <= 'f')
    return C - 'a' + 10;
  if (C >= 'A' && C <= 'F')
    return C - 'A' + 10;
  return -1;
}

std::string lsp::uriToPath(const std::string &Uri) {
  if (!startsWith(Uri, "file://"))
    return Uri;
  // file://HOST/path — only empty or "localhost" hosts make sense here.
  size_t P = 7;
  size_t Slash = Uri.find('/', P);
  if (Slash == std::string::npos)
    return Uri.substr(P);
  P = Slash;
  std::string Out;
  Out.reserve(Uri.size() - P);
  for (size_t I = P; I < Uri.size(); ++I) {
    char C = Uri[I];
    if (C == '%' && I + 2 < Uri.size()) {
      int Hi = hexVal(Uri[I + 1]), Lo = hexVal(Uri[I + 2]);
      if (Hi >= 0 && Lo >= 0) {
        Out.push_back(static_cast<char>(Hi * 16 + Lo));
        I += 2;
        continue;
      }
    }
    Out.push_back(C);
  }
  return Out;
}

std::string lsp::pathToUri(const std::string &Path) {
  static const char *Hex = "0123456789ABCDEF";
  std::string Out = "file://";
  for (char C : Path) {
    unsigned char U = static_cast<unsigned char>(C);
    // Unreserved characters plus the path separator stay literal.
    if (std::isalnum(U) || C == '/' || C == '-' || C == '.' || C == '_' ||
        C == '~') {
      Out.push_back(C);
    } else {
      Out.push_back('%');
      Out.push_back(Hex[U >> 4]);
      Out.push_back(Hex[U & 0xf]);
    }
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Diagnostic mapping (1-based half-open ranges -> 0-based LSP positions)
//===----------------------------------------------------------------------===//

static json::Value lspPosition(SourceLoc L) {
  json::Value P = json::Value::object();
  P.set("line", json::Value::number(static_cast<int64_t>(
                    L.Line > 0 ? L.Line - 1 : 0)));
  P.set("character",
        json::Value::number(static_cast<int64_t>(L.Col > 0 ? L.Col - 1 : 0)));
  return P;
}

static json::Value lspDiagnostic(const rcc::Diagnostic &Dg) {
  json::Value Range = json::Value::object();
  SourceLoc Begin = Dg.Loc.isValid() ? Dg.Loc : SourceLoc{1, 1};
  SourceLoc End = Dg.End.isValid() ? Dg.End : Begin;
  Range.set("start", lspPosition(Begin));
  Range.set("end", lspPosition(End));

  json::Value J = json::Value::object();
  J.set("range", std::move(Range));
  int Severity = 1; // Error
  if (Dg.Level == DiagLevel::Warning)
    Severity = 2;
  else if (Dg.Level == DiagLevel::Note)
    Severity = 3; // Information
  J.set("severity", json::Value::number(static_cast<int64_t>(Severity)));
  if (!Dg.Rule.empty())
    J.set("code", json::Value::str(Dg.Rule));
  J.set("source", json::Value::str("refinedc"));
  std::string Msg = Dg.Message;
  if (!Dg.Fn.empty())
    Msg = "[" + Dg.Fn + "] " + Msg;
  for (const std::string &Ctx : Dg.Context)
    Msg += "\n" + Ctx;
  J.set("message", json::Value::str(Msg));
  return J;
}

//===----------------------------------------------------------------------===//
// LspServer
//===----------------------------------------------------------------------===//

LspServer::LspServer(LspOptions Opts) : O(Opts), D([&Opts] {
  daemon::DaemonOptions DO;
  DO.CacheDir = Opts.CacheDir;
  DO.CacheMaxBytes = Opts.CacheMaxBytes;
  DO.Jobs = Opts.Jobs;
  DO.Recheck = Opts.Recheck;
  DO.Trace = Opts.Trace;
  return DO;
}()) {}

void LspServer::respond(std::ostream &Out, const json::Value &Id,
                        json::Value Result) {
  json::Value Msg = json::Value::object();
  Msg.set("jsonrpc", json::Value::str("2.0"));
  Msg.set("id", Id);
  Msg.set("result", std::move(Result));
  Out << rpc::encodeFrame(Msg.write());
  Out.flush();
}

void LspServer::respondError(std::ostream &Out, const json::Value &Id,
                             int Code, const std::string &Message) {
  json::Value Err = json::Value::object();
  Err.set("code", json::Value::number(static_cast<int64_t>(Code)));
  Err.set("message", json::Value::str(Message));
  json::Value Msg = json::Value::object();
  Msg.set("jsonrpc", json::Value::str("2.0"));
  Msg.set("id", Id);
  Msg.set("error", std::move(Err));
  Out << rpc::encodeFrame(Msg.write());
  Out.flush();
}

void LspServer::notify(std::ostream &Out, const std::string &Method,
                       json::Value Params) {
  json::Value Msg = json::Value::object();
  Msg.set("jsonrpc", json::Value::str("2.0"));
  Msg.set("method", json::Value::str(Method));
  Msg.set("params", std::move(Params));
  Out << rpc::encodeFrame(Msg.write());
  Out.flush();
}

void LspServer::publish(const std::string &Path,
                        const std::vector<rcc::Diagnostic> &Diags,
                        std::ostream &Out) {
  json::Value Arr = json::Value::array();
  for (const rcc::Diagnostic &Dg : Diags)
    Arr.push(lspDiagnostic(Dg));
  json::Value Params = json::Value::object();
  Params.set("uri", json::Value::str(pathToUri(Path)));
  Params.set("diagnostics", std::move(Arr));
  notify(Out, "textDocument/publishDiagnostics", std::move(Params));
}

void LspServer::checkAndPublish(const std::string &Path, std::ostream &Out) {
  std::vector<rcc::Diagnostic> Diags;
  bool Processed = D.checkDocument(
      Path,
      [&Diags](const daemon::Event &E) {
        if (E.Kind == daemon::EventKind::Diagnostic && !E.Verified &&
            !E.Diag.Message.empty()) {
          Diags.push_back(E.Diag);
        } else if (E.Kind == daemon::EventKind::Error &&
                   !E.Diag.Message.empty()) {
          // Compile failure: one file-level diagnostic at the frontend's
          // reported location (or the top of the file).
          rcc::Diagnostic Dg = E.Diag;
          Dg.File = E.File;
          Diags.push_back(std::move(Dg));
        }
      },
      /*Force=*/true);
  if (!Processed) {
    // Unchanged content (or unreadable without an overlay): the last
    // published set still describes the document.
    auto It = Published.find(Path);
    if (It != Published.end())
      Diags = It->second;
  }
  Published[Path] = Diags;
  publish(Path, Diags, Out);
}

void LspServer::handleMessage(const std::string &Body, std::ostream &Out) {
  json::Value Msg;
  std::string Err;
  if (!json::parse(Body, Msg, &Err)) {
    respondError(Out, json::Value::null(), kParseError, "parse error: " + Err);
    return;
  }

  const json::Value *MethodV = Msg.field("method");
  const json::Value *IdV = Msg.field("id");
  bool IsRequest = IdV != nullptr;
  std::string Method = MethodV ? MethodV->asString() : "";
  const json::Value *Params = Msg.field("params");

  // A body with no method is a response (we send no requests) or garbage.
  if (Method.empty()) {
    if (IsRequest)
      respondError(Out, *IdV, kInvalidRequest, "message has no method");
    return;
  }

  // `exit` is valid in every state and ends the loop; exit code 0 only
  // when `shutdown` was requested first.
  if (Method == "exit") {
    Exiting = true;
    return;
  }

  if (!Initialized) {
    if (Method == "initialize") {
      json::Value SyncSave = json::Value::object();
      SyncSave.set("includeText", json::Value::boolean(true));
      json::Value Sync = json::Value::object();
      Sync.set("openClose", json::Value::boolean(true));
      Sync.set("change", json::Value::number(static_cast<int64_t>(1)));
      Sync.set("save", std::move(SyncSave));
      json::Value Caps = json::Value::object();
      Caps.set("textDocumentSync", std::move(Sync));
      json::Value Info = json::Value::object();
      Info.set("name", json::Value::str("rcc-lsp"));
      Info.set("version", json::Value::str(versionString()));
      json::Value Result = json::Value::object();
      Result.set("capabilities", std::move(Caps));
      Result.set("serverInfo", std::move(Info));
      respond(Out, IsRequest ? *IdV : json::Value::null(), std::move(Result));
      Initialized = true;
      return;
    }
    // Per the spec: reject requests with ServerNotInitialized, drop
    // notifications silently.
    if (IsRequest)
      respondError(Out, *IdV, kServerNotInitialized,
                   "server not initialized");
    return;
  }

  if (ShutdownSeen && Method != "shutdown") {
    // After shutdown only `exit` (handled above) is acceptable.
    if (IsRequest)
      respondError(Out, *IdV, kInvalidRequest,
                   "request after shutdown");
    return;
  }

  if (Method == "initialized")
    return; // client handshake notification; nothing to do

  if (Method == "shutdown") {
    ShutdownSeen = true;
    if (IsRequest)
      respond(Out, *IdV, json::Value::null());
    return;
  }

  if (Method == "textDocument/didOpen") {
    const json::Value *Uri = Params ? Params->field("textDocument", "uri")
                                    : nullptr;
    const json::Value *Text = Params ? Params->field("textDocument", "text")
                                     : nullptr;
    if (!Uri || !Text)
      return;
    std::string Path = uriToPath(Uri->asString());
    D.setOverlay(Path, Text->asString());
    checkAndPublish(Path, Out);
    return;
  }

  if (Method == "textDocument/didChange") {
    const json::Value *Uri = Params ? Params->field("textDocument", "uri")
                                    : nullptr;
    const json::Value *Changes = Params ? Params->field("contentChanges")
                                        : nullptr;
    if (!Uri || !Changes || Changes->items().empty())
      return;
    // Full-document sync (capability change=1): the last change wins.
    const json::Value *Text = Changes->items().back().field("text");
    if (!Text)
      return;
    // Refresh the overlay only; verification runs on save (like batch
    // RefinedC), so typing does not trigger proof search per keystroke.
    D.setOverlay(uriToPath(Uri->asString()), Text->asString());
    return;
  }

  if (Method == "textDocument/didSave") {
    const json::Value *Uri = Params ? Params->field("textDocument", "uri")
                                    : nullptr;
    if (!Uri)
      return;
    std::string Path = uriToPath(Uri->asString());
    // includeText capability: prefer the authoritative saved text.
    if (const json::Value *Text = Params->field("text"))
      if (Text->isString())
        D.setOverlay(Path, Text->asString());
    checkAndPublish(Path, Out);
    return;
  }

  if (Method == "textDocument/didClose") {
    const json::Value *Uri = Params ? Params->field("textDocument", "uri")
                                    : nullptr;
    if (!Uri)
      return;
    std::string Path = uriToPath(Uri->asString());
    D.clearOverlay(Path);
    D.removeDocument(Path);
    // Clear the client's view of the closed document.
    Published.erase(Path);
    publish(Path, {}, Out);
    return;
  }

  // "$/" methods are optional by definition; everything else unknown is a
  // MethodNotFound for requests and silence for notifications.
  if (IsRequest && !startsWith(Method, "$/"))
    respondError(Out, *IdV, kMethodNotFound,
                 "method not found: " + Method);
}

int LspServer::run(std::istream &In, std::ostream &Out) {
  rpc::FrameDecoder Dec;
  char Chunk[4096];
  std::string Body;
  while (!Exiting) {
    while (!Exiting && Dec.next(Body))
      handleMessage(Body, Out);
    if (Exiting)
      break;
    if (Dec.hasError()) {
      // A byte stream cannot be re-synchronised after a framing error;
      // treat it as a disconnect (exit code still reflects shutdown).
      break;
    }
    // Read only what the decoder can consume: single bytes while scanning
    // headers (the terminator position is unknown), bulk inside a body.
    size_t Want = Dec.bytesNeeded();
    if (Want == 0 || Want > sizeof(Chunk))
      Want = sizeof(Chunk);
    In.read(Chunk, static_cast<std::streamsize>(Want));
    std::streamsize N = In.gcount();
    if (N <= 0)
      break;
    Dec.feed(Chunk, static_cast<size_t>(N));
  }
  return ShutdownSeen ? 0 : 1;
}
