//===- Daemon.h - Long-lived verification server (verifyd) -----*- C++ -*-===//
//
// Part of RefinedC++, a C++ reproduction of the RefinedC verifier (PLDI'21).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The verification daemon behind `verifyd` and `rcc-lsp` (DESIGN.md,
/// "Verification daemon" / "LSP server"). A Daemon owns a *workspace* of
/// watched documents and a pair of store tiers that outlive any single
/// compile: the in-memory L1 stays warm across *revisions* of every
/// document (each revision is a fresh frontend compile and a fresh Checker
/// session sharing the tiers via Checker::adoptStoreTiers), and the
/// optional disk L2 stays warm across *restarts* (entries are replayed
/// through the proof checker before they are trusted, exactly as in batch
/// mode). Because result-store keys fold in the function body, its callee
/// specs, and the spec-environment fingerprint, a revision re-verifies
/// exactly the functions whose verification problem actually changed —
/// everything else is an L1 hit, and editing one of N workspace files
/// re-verifies only that file's changed functions.
///
/// Each document carries its own revision state: poll fingerprints
/// (mtime+size, then a content hash so `touch` without an edit is not a
/// revision), an optional *overlay* — an editor-owned buffer installed by
/// the LSP server on didOpen/didChange that takes precedence over the
/// file's bytes — and the last compiled session.
///
/// Events are typed (daemon::Event); the JSON-lines protocol over stdio
/// (`verifyd --stdio`) or a Unix domain socket (`verifyd --socket=PATH`)
/// renders them with Event::toJsonLine, and the LSP server consumes them
/// directly through a StructuredSink. Legacy (v1) requests are single
/// words (`check`, `status`, `shutdown`); every `check` exchange is
/// terminated by a `revision_done`, `unchanged`, or `error` event per
/// document. A socket client may instead upgrade to protocol v2
/// (fleet/Protocol.h) with a `hello` handshake: its requests become
/// id-correlated `{"rcc": "req"}` messages and its events gain the
/// versioned envelope (Event::toJsonLine(Version, ReqId)), while v1
/// clients on the same socket keep receiving the byte-identical legacy
/// lines.
///
//===----------------------------------------------------------------------===//

#ifndef RCC_DAEMON_DAEMON_H
#define RCC_DAEMON_DAEMON_H

#include "daemon/Event.h"
#include "frontend/Frontend.h"
#include "refinedc/Checker.h"
#include "store/ResultStore.h"

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

namespace rcc::daemon {

struct DaemonOptions {
  /// The primary watched source file (the workspace's first document).
  std::string Path;
  /// Additional workspace documents (verifyd accepts several files; the
  /// LSP server adds documents dynamically via addDocument instead).
  std::vector<std::string> Paths;
  /// Persistent L2 cache directory (empty: L1 only — warm across
  /// revisions, cold across restarts).
  std::string CacheDir;
  /// GC budget for the cache directory, enforced after every revision and
  /// at shutdown (0 = unbounded). See DiskResultStore::gc.
  uint64_t CacheMaxBytes = 0;
  /// Concurrent verification jobs per revision (0 = all cores).
  unsigned Jobs = 1;
  /// Replay derivations through the independent ProofChecker (both fresh
  /// results and L2 hits); off = content-hash trust.
  bool Recheck = true;
  /// Watch poll interval in milliseconds.
  unsigned PollMs = 200;
  /// Optional trace session: revision spans and the `daemon.revisions` /
  /// `daemon.reverified` counters land here.
  trace::TraceSession *Trace = nullptr;
};

class Daemon {
public:
  explicit Daemon(DaemonOptions Opts);
  ~Daemon();
  Daemon(const Daemon &) = delete;
  Daemon &operator=(const Daemon &) = delete;

  // --- Workspace management (the LSP server's surface) ---

  /// Adds \p Path to the workspace (no-op if already present). Returns
  /// false only when Path is empty.
  bool addDocument(const std::string &Path);
  /// Removes \p Path and its session; shared-tier entries stay warm (keys
  /// are content hashes, so re-adding the document hits L1).
  bool removeDocument(const std::string &Path);
  /// The watched document paths, in workspace order.
  std::vector<std::string> documents() const;
  /// Installs an editor-owned buffer for \p Path (didOpen/didChange): all
  /// subsequent checks verify this text instead of the file's bytes. Adds
  /// the document if needed.
  void setOverlay(const std::string &Path, std::string Text);
  /// Drops the overlay (didClose); the next check reads the file again.
  bool clearOverlay(const std::string &Path);
  bool hasOverlay(const std::string &Path) const;

  // --- Checking ---

  /// One revision step over the whole workspace. \p Force re-reads every
  /// document even when the cheap mtime/size poll saw no change (a `check`
  /// request); the watch loop calls with Force=false. Returns true when at
  /// least one revision was processed (verified or failed to compile). On
  /// an unchanged forced check, emits an `unchanged` event per document so
  /// a request is never left without a terminating reply.
  bool checkOnce(const StructuredSink &Sink, bool Force = false);
  bool checkOnce(const EventSink &Sink, bool Force = false);

  /// One revision step for a single document (the LSP server's per-save
  /// path). Adds the document if needed.
  bool checkDocument(const std::string &Path, const StructuredSink &Sink,
                     bool Force = true);

  /// Dispatches one protocol line (`check` / `status` / `shutdown`;
  /// unknown commands produce an `error` event). Returns false when the
  /// daemon should shut down. These are the legacy v1 commands *and* the
  /// method set of v2 requests — runSocket maps `{"rcc": "req", "method":
  /// M}` onto the same dispatch, so both protocol generations share one
  /// semantic surface.
  bool handleLine(const std::string &Line, const EventSink &Sink);
  bool handleLine(const std::string &Line, const StructuredSink &Sink);

  /// Stdio transport: cold-start verification, then one command per input
  /// line. When \p In is std::cin, the loop polls the workspace between
  /// lines (watch mode); other streams (tests) are drained line by line.
  /// Returns the exit code (0 iff the last revision fully verified).
  int runStdio(std::istream &In, std::ostream &Out);

  /// Unix-domain-socket transport: accepts any number of clients, serves
  /// their requests, broadcasts watch revisions to all of them, and
  /// mirrors every event to stdout. Returns the exit code.
  int runSocket(const std::string &SockPath);

  /// Installs SIGINT/SIGTERM handlers that request a clean shutdown (the
  /// run loops flush the store GC and emit a final `shutdown` event).
  static void installSignalHandlers();
  static bool shutdownRequested();
  /// Clears the flag (tests reuse the process).
  static void resetShutdownFlag();

  // --- State queries ---

  /// Revision counter of the primary (first) document.
  unsigned revision() const;
  /// Revision counter of one document (0 = unknown path or never checked).
  unsigned documentRevision(const std::string &Path) const;
  /// Last result of the primary document.
  const refinedc::ProgramResult &lastResult() const;
  /// Last result of one document (nullptr = unknown path).
  const refinedc::ProgramResult *result(const std::string &Path) const;
  /// True when every workspace document's last processed revision compiled
  /// and fully verified.
  bool lastAllVerified() const;
  store::DiskResultStore *l2() { return L2.get(); }

private:
  /// One watched document: poll fingerprints, optional editor overlay, and
  /// the live session of its last good compile.
  struct Document {
    std::string Path;

    /// Cheap poll state (mtime+size) and the authoritative content hash.
    bool HaveStat = false;
    int64_t LastMTimeTicks = 0;
    uint64_t LastSize = 0;
    uint64_t LastHash = 0;

    /// Editor-owned buffer; when present it is the document's content.
    bool HasOverlay = false;
    std::string Overlay;

    unsigned Rev = 0;
    bool LastGood = false;
    /// The live session. Chk references *AP, so AP must outlive it; both
    /// are replaced together on a successful recompile (Chk first).
    std::unique_ptr<front::AnnotatedProgram> AP;
    std::unique_ptr<refinedc::Checker> Chk;
    refinedc::ProgramResult Last;

    ~Document() {
      Chk.reset();
      AP.reset();
    }
  };

  Document *find(const std::string &Path);
  const Document *find(const std::string &Path) const;
  /// One revision step for \p D (see checkOnce for the contract).
  bool checkDoc(Document &D, const StructuredSink &Sink, bool Force);
  /// Compiles \p Source, builds a fresh Checker session over the shared
  /// tiers, verifies every annotated function, and emits the revision's
  /// events. False when the source does not compile (an `error` event
  /// carrying the frontend's source location is emitted and the previous
  /// session stays live).
  bool verifyRevision(Document &D, const std::string &Source,
                      const StructuredSink &Sink);
  /// Enforces CacheMaxBytes on L2, emitting a `gc` event when anything
  /// was evicted.
  void runGc(const StructuredSink &Sink);
  void emitShutdown(const StructuredSink &Sink);
  /// Adapts a JSON-lines sink to the typed model.
  static StructuredSink render(const EventSink &Sink);

  DaemonOptions O;
  /// Shared tiers, adopted by every revision's Checker in every document.
  std::shared_ptr<store::MemoryResultStore> L1;
  std::shared_ptr<store::DiskResultStore> L2;

  /// The workspace. Stable pointers (unique_ptr elements) because live
  /// sessions hold interior references.
  std::vector<std::unique_ptr<Document>> Docs;
};

} // namespace rcc::daemon

#endif // RCC_DAEMON_DAEMON_H
