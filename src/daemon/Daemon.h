//===- Daemon.h - Long-lived verification server (verifyd) -----*- C++ -*-===//
//
// Part of RefinedC++, a C++ reproduction of the RefinedC verifier (PLDI'21).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The verification daemon behind `verifyd` (DESIGN.md, "Verification
/// daemon"). A Daemon owns one watched source file and a pair of store
/// tiers that outlive any single compile: the in-memory L1 stays warm
/// across *revisions* (each revision is a fresh frontend compile and a
/// fresh Checker session sharing the tiers via
/// Checker::adoptStoreTiers), and the optional disk L2 stays warm across
/// *restarts* (entries are replayed through the proof checker before they
/// are trusted, exactly as in batch mode). Because result-store keys fold
/// in the function body, its callee specs, and the spec-environment
/// fingerprint, a revision re-verifies exactly the functions whose
/// verification problem actually changed — everything else is an L1 hit.
///
/// Change detection is portable polling: a cheap mtime+size stat per tick,
/// then a content hash over the bytes before anything recompiles (so
/// `touch` without an edit is not a revision).
///
/// The protocol is JSON lines over either stdio (`verifyd --stdio`, for
/// tests and editor integrations) or a Unix domain socket
/// (`verifyd --socket=PATH`, where `verify_tool --connect=PATH` is a thin
/// client). Requests are single words (`check`, `status`, `shutdown`);
/// every `check` exchange is terminated by a `revision_done`, `unchanged`,
/// or `error` event. Watch-triggered revisions broadcast the same events
/// to every connected subscriber.
///
//===----------------------------------------------------------------------===//

#ifndef RCC_DAEMON_DAEMON_H
#define RCC_DAEMON_DAEMON_H

#include "frontend/Frontend.h"
#include "refinedc/Checker.h"
#include "store/ResultStore.h"

#include <functional>
#include <iosfwd>
#include <memory>
#include <string>

namespace rcc::daemon {

struct DaemonOptions {
  /// The watched source file.
  std::string Path;
  /// Persistent L2 cache directory (empty: L1 only — warm across
  /// revisions, cold across restarts).
  std::string CacheDir;
  /// GC budget for the cache directory, enforced after every revision and
  /// at shutdown (0 = unbounded). See DiskResultStore::gc.
  uint64_t CacheMaxBytes = 0;
  /// Concurrent verification jobs per revision (0 = all cores).
  unsigned Jobs = 1;
  /// Replay derivations through the independent ProofChecker (both fresh
  /// results and L2 hits); off = content-hash trust.
  bool Recheck = true;
  /// Watch poll interval in milliseconds.
  unsigned PollMs = 200;
  /// Optional trace session: revision spans and the `daemon.revisions` /
  /// `daemon.reverified` counters land here.
  trace::TraceSession *Trace = nullptr;
};

/// Receives one rendered JSON event (a single line, no trailing newline).
using EventSink = std::function<void(const std::string &)>;

class Daemon {
public:
  explicit Daemon(DaemonOptions Opts);
  ~Daemon();
  Daemon(const Daemon &) = delete;
  Daemon &operator=(const Daemon &) = delete;

  /// One revision step. \p Force re-reads the file even when the cheap
  /// mtime/size poll saw no change (a `check` request); the watch loop
  /// calls with Force=false. Returns true when a revision was processed
  /// (verified or failed to compile); false when nothing changed. On an
  /// unchanged forced check, emits an `unchanged` event so a request is
  /// never left without a terminating reply.
  bool checkOnce(const EventSink &Sink, bool Force = false);

  /// Dispatches one protocol line (`check` / `status` / `shutdown`;
  /// unknown commands produce an `error` event). Returns false when the
  /// daemon should shut down.
  bool handleLine(const std::string &Line, const EventSink &Sink);

  /// Stdio transport: cold-start verification, then one command per input
  /// line. When \p In is std::cin, the loop polls the file between lines
  /// (watch mode); other streams (tests) are drained line by line.
  /// Returns the exit code (0 iff the last revision fully verified).
  int runStdio(std::istream &In, std::ostream &Out);

  /// Unix-domain-socket transport: accepts any number of clients, serves
  /// their requests, broadcasts watch revisions to all of them, and
  /// mirrors every event to stdout. Returns the exit code.
  int runSocket(const std::string &SockPath);

  /// Installs SIGINT/SIGTERM handlers that request a clean shutdown (the
  /// run loops flush the store GC and emit a final `shutdown` event).
  static void installSignalHandlers();
  static bool shutdownRequested();
  /// Clears the flag (tests reuse the process).
  static void resetShutdownFlag();

  unsigned revision() const { return Rev; }
  const refinedc::ProgramResult &lastResult() const { return Last; }
  /// True when the last processed revision compiled and fully verified.
  bool lastAllVerified() const {
    return LastGood && Last.allVerified() && Last.allRechecksOk();
  }
  store::DiskResultStore *l2() { return L2.get(); }

private:
  /// Compiles \p Source, builds a fresh Checker session over the shared
  /// tiers, verifies every annotated function, and emits the revision's
  /// events. False when the source does not compile (an `error` event is
  /// emitted and the previous session stays live).
  bool verifyRevision(const std::string &Source, const EventSink &Sink);
  /// Enforces CacheMaxBytes on L2, emitting a `gc` event when anything
  /// was evicted.
  void runGc(const EventSink &Sink);
  void emitShutdown(const EventSink &Sink);

  DaemonOptions O;
  /// Shared tiers, adopted by every revision's Checker.
  std::shared_ptr<store::MemoryResultStore> L1;
  std::shared_ptr<store::DiskResultStore> L2;

  /// Cheap poll state (mtime+size) and the authoritative content hash.
  bool HaveStat = false;
  int64_t LastMTimeTicks = 0;
  uint64_t LastSize = 0;
  uint64_t LastHash = 0;

  unsigned Rev = 0;
  bool LastGood = false;
  /// The live session. Chk references *AP, so AP must outlive it; both are
  /// replaced together on a successful recompile (Chk first).
  std::unique_ptr<front::AnnotatedProgram> AP;
  std::unique_ptr<refinedc::Checker> Chk;
  refinedc::ProgramResult Last;
};

} // namespace rcc::daemon

#endif // RCC_DAEMON_DAEMON_H
