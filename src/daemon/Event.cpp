//===- Event.cpp - Typed daemon events ------------------------------------===//
//
// Part of RefinedC++, a C++ reproduction of the RefinedC verifier (PLDI'21).
//
//===----------------------------------------------------------------------===//

#include "daemon/Event.h"

#include "support/Json.h"
#include "support/Util.h"

#include <cstdio>

using namespace rcc;
using namespace rcc::daemon;

static std::string fmtMs(double Ms) {
  char Buf[32];
  snprintf(Buf, sizeof(Buf), "%.3f", Ms);
  return Buf;
}

Event Event::fromFnResult(unsigned Rev, const std::string &File,
                          const refinedc::FnResult &R) {
  Event E;
  E.Kind = EventKind::Diagnostic;
  E.Rev = Rev;
  E.File = File;
  E.Verified = R.Verified;
  E.Trusted = R.Trusted;
  E.Cached = R.CacheHit;
  E.WallMs = R.WallMillis;
  if (!R.Diags.empty()) {
    E.Diag = R.Diags.front();
  } else {
    // Verified functions (and legacy store entries) have no structured
    // diagnostic; keep the attribution fields populated anyway.
    E.Diag.Message = R.Error;
    E.Diag.Loc = R.ErrorLoc;
    E.Diag.Rule = R.FailedRule;
  }
  E.Diag.Fn = R.Name;
  E.Diag.File = File;
  return E;
}

std::string Event::toJsonLine() const {
  std::string S;
  switch (Kind) {
  case EventKind::Revision:
    S = "{\"event\": \"revision\", \"rev\": " + std::to_string(Rev) +
        ", \"file\": " + jsonQuote(File) + "}";
    break;

  case EventKind::Diagnostic:
    S = "{\"event\": \"diagnostic\", \"rev\": " + std::to_string(Rev) +
        ", \"file\": " + jsonQuote(File) + ", \"fn\": " + jsonQuote(Diag.Fn) +
        std::string(", \"verified\": ") + (Verified ? "true" : "false") +
        std::string(", \"cached\": ") + (Cached ? "true" : "false");
    if (Trusted)
      S += ", \"trusted\": true";
    if (!Diag.Message.empty()) {
      S += ", \"error\": " + jsonQuote(Diag.Message);
      if (Diag.Loc.isValid())
        S += ", \"line\": " + std::to_string(Diag.Loc.Line) +
             ", \"col\": " + std::to_string(Diag.Loc.Col);
      // The unified wire shape, byte-identical to the entries of
      // `verify_tool --format=json`'s "diagnostics" array.
      S += ", \"diagnostic\": " + Diag.toJson();
    }
    S += ", \"wall_ms\": " + fmtMs(WallMs) + "}";
    break;

  case EventKind::RevisionDone:
    S = "{\"event\": \"revision_done\", \"rev\": " + std::to_string(Rev) +
        ", \"file\": " + jsonQuote(File) +
        ", \"functions\": " + std::to_string(Functions) +
        ", \"reverified\": " + std::to_string(Reverified) +
        ", \"cached\": " + std::to_string(CachedFns) +
        ", \"l1_hits\": " + std::to_string(L1Hits) +
        ", \"l2_hits\": " + std::to_string(L2Hits) +
        ", \"replayed\": " + std::to_string(Replayed) +
        ", \"failed\": " + std::to_string(Failed) +
        std::string(", \"all_verified\": ") + (AllVerified ? "true" : "false") +
        ", \"wall_ms\": " + fmtMs(WallMs) + "}";
    break;

  case EventKind::Unchanged:
    S = "{\"event\": \"unchanged\", \"rev\": " + std::to_string(Rev) +
        ", \"file\": " + jsonQuote(File) +
        std::string(", \"all_verified\": ") + (AllVerified ? "true" : "false") +
        "}";
    break;

  case EventKind::Status:
    S = "{\"event\": \"status\", \"rev\": " + std::to_string(Rev) +
        ", \"file\": " + jsonQuote(File) +
        ", \"functions\": " + std::to_string(Functions) +
        std::string(", \"all_verified\": ") + (AllVerified ? "true" : "false") +
        "}";
    break;

  case EventKind::Error:
    S = "{\"event\": \"error\", \"rev\": " + std::to_string(Rev);
    if (!File.empty())
      S += ", \"file\": " + jsonQuote(File);
    if (Diag.Loc.isValid())
      S += ", \"line\": " + std::to_string(Diag.Loc.Line) +
           ", \"col\": " + std::to_string(Diag.Loc.Col);
    S += ", \"message\": " + jsonQuote(Diag.Message) + "}";
    break;

  case EventKind::Gc:
    S = "{\"event\": \"gc\", \"bytes_before\": " + std::to_string(BytesBefore) +
        ", \"bytes_after\": " + std::to_string(BytesAfter) +
        ", \"evicted\": " + std::to_string(Evicted) +
        ", \"max_bytes\": " + std::to_string(MaxBytes) + "}";
    break;

  case EventKind::Shutdown:
    S = "{\"event\": \"shutdown\", \"rev\": " + std::to_string(Rev) + "}";
    break;
  }
  return S;
}

std::string Event::toJsonLine(unsigned Version, uint64_t ReqId) const {
  std::string V1 = toJsonLine();
  if (Version < 2)
    return V1;
  // The v2 envelope prefixes the *identical* v1 body, so a v2 subscriber
  // can reuse every v1 field parser and v1 byte-compatibility is trivially
  // preserved for clients that never said hello.
  return "{\"v\": 2, \"id\": " + std::to_string(ReqId) + ", " + V1.substr(1);
}

static bool parseLoc(const json::Value &O, const char *LineKey,
                     const char *ColKey, SourceLoc &Out) {
  const json::Value *L = O.field(LineKey), *C = O.field(ColKey);
  if (!L || !C || !L->isNumber() || !C->isNumber())
    return false;
  Out.Line = static_cast<unsigned>(L->asInt());
  Out.Col = static_cast<unsigned>(C->asInt());
  return true;
}

/// Restores an rcc::Diagnostic from its Diagnostic::toJson object.
static bool parseDiagObject(const json::Value &O, Diagnostic &D) {
  if (!O.isObject())
    return false;
  if (const json::Value *F = O.field("file"))
    D.File = F->asString();
  parseLoc(O, "line", "col", D.Loc);
  parseLoc(O, "end_line", "end_col", D.End);
  if (const json::Value *S = O.field("severity")) {
    if (S->asString() == "warning")
      D.Level = DiagLevel::Warning;
    else if (S->asString() == "note")
      D.Level = DiagLevel::Note;
    else
      D.Level = DiagLevel::Error;
  }
  if (const json::Value *F = O.field("fn"))
    D.Fn = F->asString();
  if (const json::Value *R = O.field("rule"))
    D.Rule = R->asString();
  const json::Value *M = O.field("message");
  if (!M || !M->isString())
    return false;
  D.Message = M->asString();
  return true;
}

bool Event::fromJsonLine(const std::string &Line, Event &Out,
                         uint64_t *ReqId) {
  json::Value V;
  if (!json::parse(Line, V, nullptr) || !V.isObject())
    return false;
  if (ReqId)
    *ReqId = 0;
  if (const json::Value *Id = V.field("id"))
    if (Id->isNumber() && ReqId)
      *ReqId = static_cast<uint64_t>(Id->asInt());
  const json::Value *Kind = V.field("event");
  if (!Kind || !Kind->isString())
    return false;
  const std::string &K = Kind->asString();

  Event E; // start from zero values; only set what the wire carries
  auto U = [&V](const char *Name, unsigned Default = 0) -> unsigned {
    const json::Value *F = V.field(Name);
    return F && F->isNumber() ? static_cast<unsigned>(F->asInt()) : Default;
  };
  auto U64 = [&V](const char *Name) -> uint64_t {
    const json::Value *F = V.field(Name);
    return F && F->isNumber() ? static_cast<uint64_t>(F->asInt()) : 0;
  };
  auto B = [&V](const char *Name) -> bool {
    const json::Value *F = V.field(Name);
    return F && F->asBool();
  };
  auto Str = [&V](const char *Name) -> std::string {
    const json::Value *F = V.field(Name);
    return F ? F->asString() : std::string();
  };
  E.Rev = U("rev");
  E.File = Str("file");
  E.AllVerified = B("all_verified");
  if (const json::Value *W = V.field("wall_ms"))
    E.WallMs = W->asNumber();

  if (K == "revision") {
    E.Kind = EventKind::Revision;
  } else if (K == "diagnostic") {
    E.Kind = EventKind::Diagnostic;
    E.Verified = B("verified");
    E.Cached = B("cached");
    E.Trusted = B("trusted");
    if (const json::Value *D = V.field("diagnostic")) {
      if (!parseDiagObject(*D, E.Diag))
        return false;
    } else {
      E.Diag.Message = Str("error");
      parseLoc(V, "line", "col", E.Diag.Loc);
    }
    E.Diag.Fn = Str("fn");
    E.Diag.File = E.File;
  } else if (K == "revision_done") {
    E.Kind = EventKind::RevisionDone;
    E.Functions = U("functions");
    E.Reverified = U("reverified");
    E.CachedFns = U("cached");
    E.L1Hits = U("l1_hits");
    E.L2Hits = U("l2_hits");
    E.Replayed = U("replayed");
    E.Failed = U("failed");
  } else if (K == "unchanged") {
    E.Kind = EventKind::Unchanged;
  } else if (K == "status") {
    E.Kind = EventKind::Status;
    E.Functions = U("functions");
  } else if (K == "error") {
    E.Kind = EventKind::Error;
    E.Diag.Message = Str("message");
    parseLoc(V, "line", "col", E.Diag.Loc);
    if (E.Diag.Message.empty())
      return false;
  } else if (K == "gc") {
    E.Kind = EventKind::Gc;
    E.BytesBefore = U64("bytes_before");
    E.BytesAfter = U64("bytes_after");
    E.Evicted = U64("evicted");
    E.MaxBytes = U64("max_bytes");
  } else if (K == "shutdown") {
    E.Kind = EventKind::Shutdown;
  } else {
    return false;
  }
  Out = std::move(E);
  return true;
}
