//===- Event.cpp - Typed daemon events ------------------------------------===//
//
// Part of RefinedC++, a C++ reproduction of the RefinedC verifier (PLDI'21).
//
//===----------------------------------------------------------------------===//

#include "daemon/Event.h"

#include "support/Util.h"

#include <cstdio>

using namespace rcc;
using namespace rcc::daemon;

static std::string fmtMs(double Ms) {
  char Buf[32];
  snprintf(Buf, sizeof(Buf), "%.3f", Ms);
  return Buf;
}

Event Event::fromFnResult(unsigned Rev, const std::string &File,
                          const refinedc::FnResult &R) {
  Event E;
  E.Kind = EventKind::Diagnostic;
  E.Rev = Rev;
  E.File = File;
  E.Verified = R.Verified;
  E.Trusted = R.Trusted;
  E.Cached = R.CacheHit;
  E.WallMs = R.WallMillis;
  if (!R.Diags.empty()) {
    E.Diag = R.Diags.front();
  } else {
    // Verified functions (and legacy store entries) have no structured
    // diagnostic; keep the attribution fields populated anyway.
    E.Diag.Message = R.Error;
    E.Diag.Loc = R.ErrorLoc;
    E.Diag.Rule = R.FailedRule;
  }
  E.Diag.Fn = R.Name;
  E.Diag.File = File;
  return E;
}

std::string Event::toJsonLine() const {
  std::string S;
  switch (Kind) {
  case EventKind::Revision:
    S = "{\"event\": \"revision\", \"rev\": " + std::to_string(Rev) +
        ", \"file\": " + jsonQuote(File) + "}";
    break;

  case EventKind::Diagnostic:
    S = "{\"event\": \"diagnostic\", \"rev\": " + std::to_string(Rev) +
        ", \"file\": " + jsonQuote(File) + ", \"fn\": " + jsonQuote(Diag.Fn) +
        std::string(", \"verified\": ") + (Verified ? "true" : "false") +
        std::string(", \"cached\": ") + (Cached ? "true" : "false");
    if (Trusted)
      S += ", \"trusted\": true";
    if (!Diag.Message.empty()) {
      S += ", \"error\": " + jsonQuote(Diag.Message);
      if (Diag.Loc.isValid())
        S += ", \"line\": " + std::to_string(Diag.Loc.Line) +
             ", \"col\": " + std::to_string(Diag.Loc.Col);
      // The unified wire shape, byte-identical to the entries of
      // `verify_tool --format=json`'s "diagnostics" array.
      S += ", \"diagnostic\": " + Diag.toJson();
    }
    S += ", \"wall_ms\": " + fmtMs(WallMs) + "}";
    break;

  case EventKind::RevisionDone:
    S = "{\"event\": \"revision_done\", \"rev\": " + std::to_string(Rev) +
        ", \"file\": " + jsonQuote(File) +
        ", \"functions\": " + std::to_string(Functions) +
        ", \"reverified\": " + std::to_string(Reverified) +
        ", \"cached\": " + std::to_string(CachedFns) +
        ", \"l1_hits\": " + std::to_string(L1Hits) +
        ", \"l2_hits\": " + std::to_string(L2Hits) +
        ", \"replayed\": " + std::to_string(Replayed) +
        ", \"failed\": " + std::to_string(Failed) +
        std::string(", \"all_verified\": ") + (AllVerified ? "true" : "false") +
        ", \"wall_ms\": " + fmtMs(WallMs) + "}";
    break;

  case EventKind::Unchanged:
    S = "{\"event\": \"unchanged\", \"rev\": " + std::to_string(Rev) +
        ", \"file\": " + jsonQuote(File) +
        std::string(", \"all_verified\": ") + (AllVerified ? "true" : "false") +
        "}";
    break;

  case EventKind::Status:
    S = "{\"event\": \"status\", \"rev\": " + std::to_string(Rev) +
        ", \"file\": " + jsonQuote(File) +
        ", \"functions\": " + std::to_string(Functions) +
        std::string(", \"all_verified\": ") + (AllVerified ? "true" : "false") +
        "}";
    break;

  case EventKind::Error:
    S = "{\"event\": \"error\", \"rev\": " + std::to_string(Rev);
    if (!File.empty())
      S += ", \"file\": " + jsonQuote(File);
    if (Diag.Loc.isValid())
      S += ", \"line\": " + std::to_string(Diag.Loc.Line) +
           ", \"col\": " + std::to_string(Diag.Loc.Col);
    S += ", \"message\": " + jsonQuote(Diag.Message) + "}";
    break;

  case EventKind::Gc:
    S = "{\"event\": \"gc\", \"bytes_before\": " + std::to_string(BytesBefore) +
        ", \"bytes_after\": " + std::to_string(BytesAfter) +
        ", \"evicted\": " + std::to_string(Evicted) +
        ", \"max_bytes\": " + std::to_string(MaxBytes) + "}";
    break;

  case EventKind::Shutdown:
    S = "{\"event\": \"shutdown\", \"rev\": " + std::to_string(Rev) + "}";
    break;
  }
  return S;
}
