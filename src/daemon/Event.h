//===- Event.h - Typed daemon events ---------------------------*- C++ -*-===//
//
// Part of RefinedC++, a C++ reproduction of the RefinedC verifier (PLDI'21).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The typed event model of the verification daemon. Every observable
/// daemon occurrence — a revision starting, a per-function verdict, a
/// revision completing, a compile error — is an Event value; transports
/// *render* events instead of assembling strings: the JSON-lines protocol
/// calls toJsonLine() (byte-compatible with the historical ad-hoc format),
/// and the LSP server maps the same values onto publishDiagnostics.
/// Diagnostic payloads ride along as rcc::Diagnostic, the one wire-level
/// diagnostic struct shared with `verify_tool --format=json`, so a
/// function's failure serializes identically on every surface.
///
//===----------------------------------------------------------------------===//

#ifndef RCC_DAEMON_EVENT_H
#define RCC_DAEMON_EVENT_H

#include "refinedc/Result.h"
#include "support/Diagnostics.h"

#include <cstdint>
#include <functional>
#include <string>

namespace rcc::daemon {

enum class EventKind : uint8_t {
  Revision,     ///< a document revision began verifying
  Diagnostic,   ///< one function's verdict within a revision
  RevisionDone, ///< revision summary (counters, verdict)
  Unchanged,    ///< forced check found no content change
  Status,       ///< status reply for one document
  Error,        ///< compile/IO/protocol error
  Gc,           ///< disk-tier eviction report
  Shutdown      ///< final event before exit
};

/// One daemon event. Only the fields meaningful for the Kind are set; the
/// rest keep their zero values and are not rendered.
struct Event {
  EventKind Kind = EventKind::Status;
  unsigned Rev = 0;
  std::string File; ///< the document this event belongs to ("" = daemon)

  /// Diagnostic / Error payload. For Kind::Diagnostic, Diag.Fn is the
  /// function and Diag carries the failure (empty Message when verified);
  /// for Kind::Error, Diag.Loc carries the frontend's source location of a
  /// compile failure (invalid for IO/protocol errors).
  rcc::Diagnostic Diag;
  bool Verified = false;
  bool Trusted = false;
  bool Cached = false;

  // Kind::RevisionDone / Kind::Status counters.
  unsigned Functions = 0;
  unsigned Reverified = 0;
  unsigned CachedFns = 0;
  unsigned L1Hits = 0;
  unsigned L2Hits = 0;
  unsigned Replayed = 0;
  unsigned Failed = 0;
  bool AllVerified = false;
  double WallMs = 0.0;

  // Kind::Gc.
  uint64_t BytesBefore = 0;
  uint64_t BytesAfter = 0;
  uint64_t Evicted = 0;
  uint64_t MaxBytes = 0;

  /// Renders the JSON-lines wire form (one line, no trailing newline).
  /// Field names, order, and `": "`/`", "` spacing are stable protocol —
  /// DaemonTest and scripts grep exact substrings of these lines.
  std::string toJsonLine() const;

  /// Renders the line for a protocol-v2 subscriber (negotiated by the
  /// `hello` handshake; see src/fleet/Protocol.h): the identical v1 body
  /// behind a `{"v": 2, "id": N, ...}` envelope, where \p ReqId correlates
  /// the event with the v2 request that triggered it (0 = unsolicited
  /// watch broadcast). Version 1 returns the v1 line byte-for-byte, so one
  /// call site serves both generations.
  std::string toJsonLine(unsigned Version, uint64_t ReqId) const;

  /// Parses a line produced by either toJsonLine form back into a typed
  /// Event (the v2 envelope, when present, lands in \p ReqId). Strict:
  /// unknown `event` names, missing mandatory fields, and JSON syntax
  /// errors all return false. Round-trips: parse(toJsonLine(E)) == E for
  /// every kind (ProtocolTest locks this down).
  static bool fromJsonLine(const std::string &Line, Event &Out,
                           uint64_t *ReqId = nullptr);

  /// Builds the per-function Diagnostic event for \p R within revision
  /// \p Rev of document \p File. Copies the checker's structured
  /// diagnostic (if any) and attributes it to the file.
  static Event fromFnResult(unsigned Rev, const std::string &File,
                            const refinedc::FnResult &R);
};

/// Receives typed events (the LSP server and in-process consumers).
using StructuredSink = std::function<void(const Event &)>;

/// Receives one rendered JSON event line (the JSON-lines transports).
using EventSink = std::function<void(const std::string &)>;

} // namespace rcc::daemon

#endif // RCC_DAEMON_EVENT_H
