//===- Daemon.cpp - Long-lived verification server (verifyd) --------------===//
//
// Part of RefinedC++, a C++ reproduction of the RefinedC verifier (PLDI'21).
//
//===----------------------------------------------------------------------===//

#include "daemon/Daemon.h"

#include "fleet/Protocol.h"
#include "refinedc/FnHash.h"
#include "support/Socket.h"
#include "support/Util.h"
#include "trace/Trace.h"

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <vector>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace fs = std::filesystem;

using namespace rcc;
using namespace rcc::daemon;

//===----------------------------------------------------------------------===//
// Shutdown flag (async-signal-safe; the run loops poll it)
//===----------------------------------------------------------------------===//

static volatile sig_atomic_t GShutdownRequested = 0;

static void requestShutdown(int) { GShutdownRequested = 1; }

void Daemon::installSignalHandlers() {
  struct sigaction SA;
  std::memset(&SA, 0, sizeof(SA));
  SA.sa_handler = requestShutdown;
  sigemptyset(&SA.sa_mask);
  // No SA_RESTART: poll()/read() must return EINTR so the loops notice the
  // flag promptly instead of sleeping out their timeout.
  sigaction(SIGINT, &SA, nullptr);
  sigaction(SIGTERM, &SA, nullptr);
}

bool Daemon::shutdownRequested() { return GShutdownRequested != 0; }

void Daemon::resetShutdownFlag() { GShutdownRequested = 0; }

//===----------------------------------------------------------------------===//
// Small helpers
//===----------------------------------------------------------------------===//

static bool readWholeFile(const std::string &Path, std::string &Out) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return false;
  std::ostringstream SS;
  SS << In.rdbuf();
  Out = SS.str();
  return true;
}

/// A document's last processed revision compiled and every function
/// verified. Never-checked documents (Rev == 0) count as unverified.
static bool docVerified(const refinedc::ProgramResult &Last, bool LastGood) {
  if (!LastGood)
    return false;
  for (const refinedc::FnResult &R : Last.Fns)
    if (!R.Verified)
      return false;
  return true;
}

static Event errorEvent(unsigned Rev, std::string File, std::string Message,
                        SourceLoc Loc = {}) {
  Event E;
  E.Kind = EventKind::Error;
  E.Rev = Rev;
  E.File = std::move(File);
  E.Diag.Message = std::move(Message);
  E.Diag.Loc = Loc;
  return E;
}

//===----------------------------------------------------------------------===//
// Daemon
//===----------------------------------------------------------------------===//

Daemon::Daemon(DaemonOptions Opts) : O(std::move(Opts)) {
  L1 = std::make_shared<store::MemoryResultStore>();
  if (!O.CacheDir.empty())
    L2 = std::make_shared<store::DiskResultStore>(O.CacheDir);
  if (!O.Path.empty())
    addDocument(O.Path);
  for (const std::string &P : O.Paths)
    addDocument(P);
}

Daemon::~Daemon() = default;

StructuredSink Daemon::render(const EventSink &Sink) {
  // Copy the sink: the returned adapter may outlive the caller's reference.
  return [Sink](const Event &E) { Sink(E.toJsonLine()); };
}

Daemon::Document *Daemon::find(const std::string &Path) {
  for (auto &D : Docs)
    if (D->Path == Path)
      return D.get();
  return nullptr;
}

const Daemon::Document *Daemon::find(const std::string &Path) const {
  for (const auto &D : Docs)
    if (D->Path == Path)
      return D.get();
  return nullptr;
}

bool Daemon::addDocument(const std::string &Path) {
  if (Path.empty())
    return false;
  if (find(Path))
    return true;
  auto D = std::make_unique<Document>();
  D->Path = Path;
  Docs.push_back(std::move(D));
  return true;
}

bool Daemon::removeDocument(const std::string &Path) {
  for (size_t I = 0; I < Docs.size(); ++I) {
    if (Docs[I]->Path == Path) {
      Docs.erase(Docs.begin() + static_cast<ptrdiff_t>(I));
      return true;
    }
  }
  return false;
}

std::vector<std::string> Daemon::documents() const {
  std::vector<std::string> Paths;
  Paths.reserve(Docs.size());
  for (const auto &D : Docs)
    Paths.push_back(D->Path);
  return Paths;
}

void Daemon::setOverlay(const std::string &Path, std::string Text) {
  addDocument(Path);
  Document *D = find(Path);
  if (!D)
    return;
  D->HasOverlay = true;
  D->Overlay = std::move(Text);
}

bool Daemon::clearOverlay(const std::string &Path) {
  Document *D = find(Path);
  if (!D || !D->HasOverlay)
    return false;
  D->HasOverlay = false;
  D->Overlay.clear();
  // The next check must re-stat the file; the content hash stays so that a
  // file identical to the dropped overlay is not a new revision.
  D->HaveStat = false;
  return true;
}

bool Daemon::hasOverlay(const std::string &Path) const {
  const Document *D = find(Path);
  return D && D->HasOverlay;
}

bool Daemon::verifyRevision(Document &D, const std::string &Source,
                            const StructuredSink &Sink) {
  trace::Span RevSpan(trace::Category::Checker, "daemon.revision",
                      "\"rev\": " + std::to_string(D.Rev));
  trace::count("daemon.revisions");

  rcc::DiagnosticEngine Diags;
  std::unique_ptr<front::AnnotatedProgram> NewAP =
      front::compileSource(Source, Diags);
  if (!NewAP) {
    D.LastGood = false;
    // Carry the frontend's source location so editors can anchor the error.
    SourceLoc Loc;
    if (!Diags.diagnostics().empty())
      Loc = Diags.diagnostics().front().Loc;
    Sink(errorEvent(D.Rev, D.Path, Diags.render(Source), Loc));
    return false;
  }

  // Fresh session over the shared tiers. The old session (if any) stays
  // live until the new one is fully built, so a spec error keeps serving
  // `status` from the previous good revision.
  auto NewChk = std::make_unique<refinedc::Checker>(*NewAP, Diags);
  NewChk->adoptStoreTiers(L1, L2);
  if (!NewChk->buildEnv()) {
    D.LastGood = false;
    SourceLoc Loc;
    if (!Diags.diagnostics().empty())
      Loc = Diags.diagnostics().front().Loc;
    Sink(errorEvent(D.Rev, D.Path, Diags.render(Source), Loc));
    return false;
  }

  refinedc::VerifyOptions VO;
  VO.Jobs = O.Jobs;
  VO.Recheck = O.Recheck;
  VO.Trace = O.Trace;

  Event Start;
  Start.Kind = EventKind::Revision;
  Start.Rev = D.Rev;
  Start.File = D.Path;
  Sink(Start);

  refinedc::ProgramResult PR = NewChk->verifyAll(VO);

  unsigned Failed = 0;
  for (const refinedc::FnResult &R : PR.Fns) {
    Sink(Event::fromFnResult(D.Rev, D.Path, R));
    if (!R.Verified)
      ++Failed;
  }
  trace::count("daemon.reverified", PR.CacheMisses);

  // Commit the new session (Chk references *AP: drop it first).
  D.Chk.reset();
  D.AP = std::move(NewAP);
  D.Chk = std::move(NewChk);
  D.Last = std::move(PR);
  D.LastGood = true;

  Event Done;
  Done.Kind = EventKind::RevisionDone;
  Done.Rev = D.Rev;
  Done.File = D.Path;
  Done.Functions = static_cast<unsigned>(D.Last.Fns.size());
  Done.Reverified = static_cast<unsigned>(D.Last.CacheMisses);
  Done.CachedFns = static_cast<unsigned>(D.Last.CacheHits);
  Done.L1Hits = static_cast<unsigned>(D.Last.L1Hits);
  Done.L2Hits = static_cast<unsigned>(D.Last.L2Hits);
  Done.Replayed = static_cast<unsigned>(D.Last.ReplayedHits);
  Done.Failed = Failed;
  Done.AllVerified = docVerified(D.Last, D.LastGood);
  Done.WallMs = D.Last.WallMillis;
  Sink(Done);
  return true;
}

bool Daemon::checkDoc(Document &D, const StructuredSink &Sink, bool Force) {
  std::string Source;
  if (D.HasOverlay) {
    // The editor owns the content; the file on disk is irrelevant until
    // didClose drops the overlay.
    Source = D.Overlay;
  } else {
    // Cheap poll: mtime + size. Only a change here (or Force) pays for the
    // read + hash below.
    std::error_code EC;
    fs::file_time_type MT = fs::last_write_time(D.Path, EC);
    uint64_t Size = EC ? 0 : static_cast<uint64_t>(fs::file_size(D.Path, EC));
    if (EC) {
      if (Force)
        Sink(errorEvent(D.Rev, D.Path,
                        "cannot stat '" + D.Path + "': " + EC.message()));
      return false;
    }
    int64_t Ticks = MT.time_since_epoch().count();
    if (!Force && D.HaveStat && Ticks == D.LastMTimeTicks &&
        Size == D.LastSize)
      return false;
    D.HaveStat = true;
    D.LastMTimeTicks = Ticks;
    D.LastSize = Size;

    if (!readWholeFile(D.Path, Source)) {
      if (Force)
        Sink(errorEvent(D.Rev, D.Path, "cannot read '" + D.Path + "'"));
      return false;
    }
  }

  // Content hash: `touch` without an edit is not a revision.
  uint64_t Hash = refinedc::ContentHasher().mix(Source).get();
  if (D.Rev > 0 && Hash == D.LastHash) {
    if (Force) {
      Event E;
      E.Kind = EventKind::Unchanged;
      E.Rev = D.Rev;
      E.File = D.Path;
      E.AllVerified = docVerified(D.Last, D.LastGood);
      Sink(E);
    }
    return false;
  }
  D.LastHash = Hash;
  ++D.Rev;

  verifyRevision(D, Source, Sink);
  return true;
}

bool Daemon::checkOnce(const StructuredSink &Sink, bool Force) {
  trace::SessionScope Scope(O.Trace);
  bool Any = false;
  for (auto &D : Docs)
    Any |= checkDoc(*D, Sink, Force);
  if (Any)
    runGc(Sink);
  return Any;
}

bool Daemon::checkOnce(const EventSink &Sink, bool Force) {
  return checkOnce(render(Sink), Force);
}

bool Daemon::checkDocument(const std::string &Path, const StructuredSink &Sink,
                           bool Force) {
  trace::SessionScope Scope(O.Trace);
  addDocument(Path);
  Document *D = find(Path);
  if (!D)
    return false;
  bool Any = checkDoc(*D, Sink, Force);
  if (Any)
    runGc(Sink);
  return Any;
}

void Daemon::runGc(const StructuredSink &Sink) {
  if (!L2 || O.CacheMaxBytes == 0)
    return;
  store::GcStats S = L2->gc(O.CacheMaxBytes);
  if (S.Evicted == 0)
    return;
  Event E;
  E.Kind = EventKind::Gc;
  E.BytesBefore = S.BytesBefore;
  E.BytesAfter = S.BytesAfter;
  E.Evicted = S.Evicted;
  E.MaxBytes = O.CacheMaxBytes;
  Sink(E);
}

bool Daemon::handleLine(const std::string &Line, const EventSink &Sink) {
  return handleLine(Line, render(Sink));
}

bool Daemon::handleLine(const std::string &Line, const StructuredSink &S) {
  std::string Cmd = trim(Line);
  if (Cmd.empty())
    return true;
  if (Cmd == "check" || Cmd == "verify") {
    checkOnce(S, /*Force=*/true);
    return true;
  }
  if (Cmd == "status") {
    for (const auto &D : Docs) {
      Event E;
      E.Kind = EventKind::Status;
      E.Rev = D->Rev;
      E.File = D->Path;
      E.Functions = static_cast<unsigned>(D->Last.Fns.size());
      E.AllVerified = docVerified(D->Last, D->LastGood);
      S(E);
    }
    return true;
  }
  if (Cmd == "shutdown" || Cmd == "quit")
    return false;
  S(errorEvent(revision(), "", "unknown command '" + Cmd + "'"));
  return true;
}

void Daemon::emitShutdown(const StructuredSink &Sink) {
  trace::SessionScope Scope(O.Trace);
  // Final GC so a bounded cache directory is within budget on exit even if
  // the last revision's eviction raced with concurrent writers.
  runGc(Sink);
  Event E;
  E.Kind = EventKind::Shutdown;
  E.Rev = revision();
  Sink(E);
}

//===----------------------------------------------------------------------===//
// State queries
//===----------------------------------------------------------------------===//

unsigned Daemon::revision() const {
  return Docs.empty() ? 0 : Docs.front()->Rev;
}

unsigned Daemon::documentRevision(const std::string &Path) const {
  const Document *D = find(Path);
  return D ? D->Rev : 0;
}

const refinedc::ProgramResult &Daemon::lastResult() const {
  static const refinedc::ProgramResult Empty;
  return Docs.empty() ? Empty : Docs.front()->Last;
}

const refinedc::ProgramResult *Daemon::result(const std::string &Path) const {
  const Document *D = find(Path);
  return D ? &D->Last : nullptr;
}

bool Daemon::lastAllVerified() const {
  for (const auto &D : Docs)
    if (!docVerified(D->Last, D->LastGood))
      return false;
  return !Docs.empty();
}

//===----------------------------------------------------------------------===//
// Stdio transport
//===----------------------------------------------------------------------===//

int Daemon::runStdio(std::istream &In, std::ostream &Out) {
  EventSink Sink = [&Out](const std::string &L) {
    Out << L << '\n';
    Out.flush();
  };

  // Cold start: verify everything before serving requests.
  checkOnce(Sink, /*Force=*/true);

  if (&In == &std::cin) {
    // Watch mode: poll stdin with a timeout; every timeout is a watch tick
    // on the workspace, so saves re-verify without any request.
    std::string Buf;
    char Chunk[4096];
    bool Eof = false;
    while (!Eof && !shutdownRequested()) {
      struct pollfd PFD;
      PFD.fd = 0;
      PFD.events = POLLIN;
      int N = poll(&PFD, 1, static_cast<int>(O.PollMs));
      if (N < 0) {
        if (errno == EINTR)
          continue;
        break;
      }
      if (N == 0) {
        checkOnce(Sink, /*Force=*/false);
        continue;
      }
      ssize_t R = read(0, Chunk, sizeof(Chunk));
      if (R <= 0) {
        Eof = true;
        break;
      }
      Buf.append(Chunk, static_cast<size_t>(R));
      size_t NL;
      while ((NL = Buf.find('\n')) != std::string::npos) {
        std::string Line = Buf.substr(0, NL);
        Buf.erase(0, NL + 1);
        if (!handleLine(Line, Sink)) {
          Eof = true;
          break;
        }
      }
    }
  } else {
    // Test harness mode: drain the stream line by line, no watching.
    std::string Line;
    while (!shutdownRequested() && std::getline(In, Line))
      if (!handleLine(Line, Sink))
        break;
  }

  emitShutdown(render(Sink));
  return lastAllVerified() ? 0 : 1;
}

//===----------------------------------------------------------------------===//
// Unix-domain-socket transport
//===----------------------------------------------------------------------===//

namespace {
/// One connected subscriber: a buffered line transport (net::LineConn owns
/// partial-write/EPIPE robustness — a dead or wedged client is reaped, and
/// never takes the daemon down or corrupts another client's stream) plus
/// its negotiated protocol state. Every connection starts at v1; a
/// well-formed `hello` upgrades it to v2, after which events carry the v2
/// envelope with the id of the client's last request.
struct Client {
  net::LineConn Conn;
  unsigned Version = 1;
  uint64_t ReqId = 0; ///< last v2 request id (echoed on its reply events)

  explicit Client(int Fd) : Conn(Fd) {}
};
} // namespace

int Daemon::runSocket(const std::string &SockPath) {
  // Belt and braces: LineConn sends with MSG_NOSIGNAL, but ignore SIGPIPE
  // anyway so no other write path can kill the daemon either.
  signal(SIGPIPE, SIG_IGN);

  std::string SockErr;
  int ListenFd = net::listenUnix(SockPath, &SockErr);
  if (ListenFd < 0) {
    fprintf(stderr, "verifyd: %s\n", SockErr.c_str());
    return 2;
  }

  std::vector<std::unique_ptr<Client>> Clients;
  // Every event goes to stdout (the daemon's log) and to every connected
  // subscriber — watch revisions broadcast, and a requesting client sees
  // its own terminating event because it is a subscriber too. The typed
  // sink renders per client: v1 connections get the exact legacy line, v2
  // connections the enveloped one.
  StructuredSink Broadcast = [&Clients](const Event &E) {
    std::string V1 = E.toJsonLine();
    fputs(V1.c_str(), stdout);
    fputc('\n', stdout);
    fflush(stdout);
    for (auto &C : Clients) {
      if (C->Conn.dead())
        continue;
      C->Conn.sendLine(C->Version >= 2 ? E.toJsonLine(C->Version, C->ReqId)
                                       : V1);
      C->Conn.flushWrites();
    }
  };

  checkOnce(Broadcast, /*Force=*/true);

  bool Stop = false;
  auto HandleV2 = [&](Client &C, const std::string &Line) {
    fleet::Msg M;
    std::string PErr;
    if (!fleet::parseMsg(Line, M, &PErr)) {
      C.Conn.sendLine(fleet::ErrorMsg{PErr}.toLine());
      C.Conn.flushWrites();
      return;
    }
    switch (M.Kind) {
    case fleet::MsgKind::Hello: {
      if (M.H.Version != fleet::kProtocolVersion) {
        C.Conn.sendLine(
            fleet::ErrorMsg{"protocol version " +
                            std::to_string(M.H.Version) +
                            " not supported (daemon speaks " +
                            std::to_string(fleet::kProtocolVersion) + ")"}
                .toLine());
        C.Conn.flushWrites();
        C.Conn.markDead();
        return;
      }
      C.Version = M.H.Version;
      fleet::HelloAck Ack;
      Ack.File = Docs.empty() ? std::string() : Docs.front()->Path;
      Ack.Recheck = O.Recheck;
      C.Conn.sendLine(Ack.toLine());
      C.Conn.flushWrites();
      return;
    }
    case fleet::MsgKind::Request:
      // The v2 request surface is the v1 command set with an id: the
      // reply events of this check/status carry the id in their envelope.
      C.ReqId = M.Q.Id;
      if (!handleLine(M.Q.Method, Broadcast))
        Stop = true;
      return;
    case fleet::MsgKind::Bye:
      C.Conn.markDead();
      return;
    default:
      C.Conn.sendLine(
          fleet::ErrorMsg{"unexpected message on a daemon socket"}.toLine());
      C.Conn.flushWrites();
      return;
    }
  };

  while (!Stop && !shutdownRequested()) {
    std::vector<struct pollfd> PFDs;
    PFDs.push_back({ListenFd, POLLIN, 0});
    for (const auto &C : Clients) {
      short Ev = POLLIN;
      if (C->Conn.wantsWrite())
        Ev |= POLLOUT;
      PFDs.push_back({C->Conn.fd(), Ev, 0});
    }

    int N = poll(PFDs.data(), PFDs.size(), static_cast<int>(O.PollMs));
    if (N < 0) {
      if (errno == EINTR)
        continue;
      break;
    }
    if (N == 0) {
      checkOnce(Broadcast, /*Force=*/false);
      continue;
    }

    if (PFDs[0].revents & POLLIN) {
      int Fd = accept(ListenFd, nullptr, nullptr);
      if (Fd >= 0)
        Clients.push_back(std::make_unique<Client>(Fd));
    }

    // PFDs[I+1] belongs to Clients[I]; accept above only appended.
    for (size_t I = 0; I < Clients.size() && I + 1 < PFDs.size(); ++I) {
      Client &C = *Clients[I];
      short Rev = PFDs[I + 1].revents;
      if (Rev & (POLLERR | POLLNVAL)) {
        C.Conn.markDead();
        continue;
      }
      if (Rev & POLLOUT)
        C.Conn.flushWrites();
      if (!(Rev & (POLLIN | POLLHUP)))
        continue;
      std::vector<std::string> Lines;
      bool Alive = C.Conn.readLines(Lines);
      for (const std::string &Line : Lines) {
        if (Stop)
          break;
        if (fleet::looksLikeV2(Line))
          HandleV2(C, Line);
        else if (!handleLine(Line, Broadcast)) // legacy v1 bare words
          Stop = true;
      }
      if (!Alive)
        C.Conn.markDead();
    }

    for (size_t I = Clients.size(); I-- > 0;)
      if (Clients[I]->Conn.dead())
        Clients.erase(Clients.begin() + static_cast<ptrdiff_t>(I));
  }

  emitShutdown(Broadcast);
  Clients.clear();
  close(ListenFd);
  ::unlink(SockPath.c_str());
  return lastAllVerified() ? 0 : 1;
}
