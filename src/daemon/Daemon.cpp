//===- Daemon.cpp - Long-lived verification server (verifyd) --------------===//
//
// Part of RefinedC++, a C++ reproduction of the RefinedC verifier (PLDI'21).
//
//===----------------------------------------------------------------------===//

#include "daemon/Daemon.h"

#include "refinedc/FnHash.h"
#include "support/Util.h"
#include "trace/Trace.h"

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <vector>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace fs = std::filesystem;

using namespace rcc;
using namespace rcc::daemon;

//===----------------------------------------------------------------------===//
// Shutdown flag (async-signal-safe; the run loops poll it)
//===----------------------------------------------------------------------===//

static volatile sig_atomic_t GShutdownRequested = 0;

static void requestShutdown(int) { GShutdownRequested = 1; }

void Daemon::installSignalHandlers() {
  struct sigaction SA;
  std::memset(&SA, 0, sizeof(SA));
  SA.sa_handler = requestShutdown;
  sigemptyset(&SA.sa_mask);
  // No SA_RESTART: poll()/read() must return EINTR so the loops notice the
  // flag promptly instead of sleeping out their timeout.
  sigaction(SIGINT, &SA, nullptr);
  sigaction(SIGTERM, &SA, nullptr);
}

bool Daemon::shutdownRequested() { return GShutdownRequested != 0; }

void Daemon::resetShutdownFlag() { GShutdownRequested = 0; }

//===----------------------------------------------------------------------===//
// Small helpers
//===----------------------------------------------------------------------===//

static bool readWholeFile(const std::string &Path, std::string &Out) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return false;
  std::ostringstream SS;
  SS << In.rdbuf();
  Out = SS.str();
  return true;
}

static std::string fmtMs(double Ms) {
  char Buf[32];
  snprintf(Buf, sizeof(Buf), "%.3f", Ms);
  return Buf;
}

//===----------------------------------------------------------------------===//
// Daemon
//===----------------------------------------------------------------------===//

Daemon::Daemon(DaemonOptions Opts) : O(std::move(Opts)) {
  L1 = std::make_shared<store::MemoryResultStore>();
  if (!O.CacheDir.empty())
    L2 = std::make_shared<store::DiskResultStore>(O.CacheDir);
}

Daemon::~Daemon() {
  // Chk references *AP; destroy it first.
  Chk.reset();
  AP.reset();
}

bool Daemon::verifyRevision(const std::string &Source, const EventSink &Sink) {
  trace::Span RevSpan(trace::Category::Checker, "daemon.revision",
                      "\"rev\": " + std::to_string(Rev));
  trace::count("daemon.revisions");

  rcc::DiagnosticEngine Diags;
  std::unique_ptr<front::AnnotatedProgram> NewAP =
      front::compileSource(Source, Diags);
  if (!NewAP) {
    LastGood = false;
    Sink("{\"event\": \"error\", \"rev\": " + std::to_string(Rev) +
         ", \"message\": " + jsonQuote(Diags.render(Source)) + "}");
    return false;
  }

  // Fresh session over the shared tiers. The old session (if any) stays
  // live until the new one is fully built, so a spec error keeps serving
  // `status` from the previous good revision.
  auto NewChk = std::make_unique<refinedc::Checker>(*NewAP, Diags);
  NewChk->adoptStoreTiers(L1, L2);
  if (!NewChk->buildEnv()) {
    LastGood = false;
    Sink("{\"event\": \"error\", \"rev\": " + std::to_string(Rev) +
         ", \"message\": " + jsonQuote(Diags.render(Source)) + "}");
    return false;
  }

  refinedc::VerifyOptions VO;
  VO.Jobs = O.Jobs;
  VO.Recheck = O.Recheck;
  VO.Trace = O.Trace;

  Sink("{\"event\": \"revision\", \"rev\": " + std::to_string(Rev) +
       ", \"file\": " + jsonQuote(O.Path) + "}");

  refinedc::ProgramResult PR = NewChk->verifyAll(VO);

  for (const refinedc::FnResult &R : PR.Fns) {
    std::string E = "{\"event\": \"diagnostic\", \"rev\": " +
                    std::to_string(Rev) + ", \"fn\": " + jsonQuote(R.Name) +
                    std::string(", \"verified\": ") +
                    (R.Verified ? "true" : "false") +
                    std::string(", \"cached\": ") +
                    (R.CacheHit ? "true" : "false");
    if (R.Trusted)
      E += ", \"trusted\": true";
    if (!R.Error.empty()) {
      E += ", \"error\": " + jsonQuote(R.Error);
      if (R.ErrorLoc.isValid())
        E += ", \"line\": " + std::to_string(R.ErrorLoc.Line) +
             ", \"col\": " + std::to_string(R.ErrorLoc.Col);
    }
    E += ", \"wall_ms\": " + fmtMs(R.WallMillis) + "}";
    Sink(E);
  }

  unsigned Failed = 0;
  for (const refinedc::FnResult &R : PR.Fns)
    if (!R.Verified)
      ++Failed;
  trace::count("daemon.reverified", PR.CacheMisses);

  // Commit the new session.
  Chk.reset();
  AP = std::move(NewAP);
  Chk = std::move(NewChk);
  Last = std::move(PR);
  LastGood = true;

  Sink("{\"event\": \"revision_done\", \"rev\": " + std::to_string(Rev) +
       ", \"functions\": " + std::to_string(Last.Fns.size()) +
       ", \"reverified\": " + std::to_string(Last.CacheMisses) +
       ", \"cached\": " + std::to_string(Last.CacheHits) +
       ", \"l1_hits\": " + std::to_string(Last.L1Hits) +
       ", \"l2_hits\": " + std::to_string(Last.L2Hits) +
       ", \"replayed\": " + std::to_string(Last.ReplayedHits) +
       ", \"failed\": " + std::to_string(Failed) +
       std::string(", \"all_verified\": ") +
       (lastAllVerified() ? "true" : "false") +
       ", \"wall_ms\": " + fmtMs(Last.WallMillis) + "}");
  return true;
}

bool Daemon::checkOnce(const EventSink &Sink, bool Force) {
  trace::SessionScope Scope(O.Trace);

  // Cheap poll: mtime + size. Only a change here (or Force) pays for the
  // read + hash below.
  std::error_code EC;
  fs::file_time_type MT = fs::last_write_time(O.Path, EC);
  uint64_t Size = EC ? 0 : static_cast<uint64_t>(fs::file_size(O.Path, EC));
  if (EC) {
    if (Force) {
      Sink("{\"event\": \"error\", \"rev\": " + std::to_string(Rev) +
           ", \"message\": " +
           jsonQuote("cannot stat '" + O.Path + "': " + EC.message()) + "}");
    }
    return false;
  }
  int64_t Ticks = MT.time_since_epoch().count();
  if (!Force && HaveStat && Ticks == LastMTimeTicks && Size == LastSize)
    return false;
  HaveStat = true;
  LastMTimeTicks = Ticks;
  LastSize = Size;

  std::string Source;
  if (!readWholeFile(O.Path, Source)) {
    if (Force)
      Sink("{\"event\": \"error\", \"rev\": " + std::to_string(Rev) +
           ", \"message\": " + jsonQuote("cannot read '" + O.Path + "'") +
           "}");
    return false;
  }

  // Content hash: `touch` without an edit is not a revision.
  uint64_t Hash = refinedc::ContentHasher().mix(Source).get();
  if (Rev > 0 && Hash == LastHash) {
    if (Force)
      Sink("{\"event\": \"unchanged\", \"rev\": " + std::to_string(Rev) +
           std::string(", \"all_verified\": ") +
           (lastAllVerified() ? "true" : "false") + "}");
    return false;
  }
  LastHash = Hash;
  ++Rev;

  verifyRevision(Source, Sink);
  runGc(Sink);
  return true;
}

void Daemon::runGc(const EventSink &Sink) {
  if (!L2 || O.CacheMaxBytes == 0)
    return;
  store::GcStats S = L2->gc(O.CacheMaxBytes);
  if (S.Evicted == 0)
    return;
  Sink("{\"event\": \"gc\", \"bytes_before\": " +
       std::to_string(S.BytesBefore) +
       ", \"bytes_after\": " + std::to_string(S.BytesAfter) +
       ", \"evicted\": " + std::to_string(S.Evicted) +
       ", \"max_bytes\": " + std::to_string(O.CacheMaxBytes) + "}");
}

bool Daemon::handleLine(const std::string &Line, const EventSink &Sink) {
  std::string Cmd = trim(Line);
  if (Cmd.empty())
    return true;
  if (Cmd == "check" || Cmd == "verify") {
    checkOnce(Sink, /*Force=*/true);
    return true;
  }
  if (Cmd == "status") {
    Sink("{\"event\": \"status\", \"rev\": " + std::to_string(Rev) +
         ", \"file\": " + jsonQuote(O.Path) +
         ", \"functions\": " + std::to_string(Last.Fns.size()) +
         std::string(", \"all_verified\": ") +
         (lastAllVerified() ? "true" : "false") + "}");
    return true;
  }
  if (Cmd == "shutdown" || Cmd == "quit")
    return false;
  Sink("{\"event\": \"error\", \"rev\": " + std::to_string(Rev) +
       ", \"message\": " + jsonQuote("unknown command '" + Cmd + "'") + "}");
  return true;
}

void Daemon::emitShutdown(const EventSink &Sink) {
  trace::SessionScope Scope(O.Trace);
  // Final GC so a bounded cache directory is within budget on exit even if
  // the last revision's eviction raced with concurrent writers.
  runGc(Sink);
  Sink("{\"event\": \"shutdown\", \"rev\": " + std::to_string(Rev) + "}");
}

//===----------------------------------------------------------------------===//
// Stdio transport
//===----------------------------------------------------------------------===//

int Daemon::runStdio(std::istream &In, std::ostream &Out) {
  EventSink Sink = [&Out](const std::string &L) {
    Out << L << '\n';
    Out.flush();
  };

  // Cold start: verify everything before serving requests.
  checkOnce(Sink, /*Force=*/true);

  if (&In == &std::cin) {
    // Watch mode: poll stdin with a timeout; every timeout is a watch tick
    // on the source file, so saves re-verify without any request.
    std::string Buf;
    char Chunk[4096];
    bool Eof = false;
    while (!Eof && !shutdownRequested()) {
      struct pollfd PFD;
      PFD.fd = 0;
      PFD.events = POLLIN;
      int N = poll(&PFD, 1, static_cast<int>(O.PollMs));
      if (N < 0) {
        if (errno == EINTR)
          continue;
        break;
      }
      if (N == 0) {
        checkOnce(Sink, /*Force=*/false);
        continue;
      }
      ssize_t R = read(0, Chunk, sizeof(Chunk));
      if (R <= 0) {
        Eof = true;
        break;
      }
      Buf.append(Chunk, static_cast<size_t>(R));
      size_t NL;
      while ((NL = Buf.find('\n')) != std::string::npos) {
        std::string Line = Buf.substr(0, NL);
        Buf.erase(0, NL + 1);
        if (!handleLine(Line, Sink)) {
          Eof = true;
          break;
        }
      }
    }
  } else {
    // Test harness mode: drain the stream line by line, no watching.
    std::string Line;
    while (!shutdownRequested() && std::getline(In, Line))
      if (!handleLine(Line, Sink))
        break;
  }

  emitShutdown(Sink);
  return lastAllVerified() ? 0 : 1;
}

//===----------------------------------------------------------------------===//
// Unix-domain-socket transport
//===----------------------------------------------------------------------===//

namespace {
/// One connected client: its fd and its partial-line input buffer.
struct Client {
  int Fd = -1;
  std::string InBuf;
  bool Dead = false;
};
} // namespace

static void writeAll(Client &C, const std::string &S) {
  size_t Off = 0;
  while (Off < S.size()) {
    ssize_t W = write(C.Fd, S.data() + Off, S.size() - Off);
    if (W < 0) {
      if (errno == EINTR)
        continue;
      C.Dead = true; // disconnected mid-write; reaped by the loop
      return;
    }
    Off += static_cast<size_t>(W);
  }
}

int Daemon::runSocket(const std::string &SockPath) {
  // A client that disconnects mid-broadcast must not kill the daemon.
  signal(SIGPIPE, SIG_IGN);

  int ListenFd = socket(AF_UNIX, SOCK_STREAM, 0);
  if (ListenFd < 0) {
    fprintf(stderr, "verifyd: socket: %s\n", strerror(errno));
    return 2;
  }
  struct sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (SockPath.size() >= sizeof(Addr.sun_path)) {
    fprintf(stderr, "verifyd: socket path too long: %s\n", SockPath.c_str());
    close(ListenFd);
    return 2;
  }
  std::memcpy(Addr.sun_path, SockPath.c_str(), SockPath.size() + 1);
  ::unlink(SockPath.c_str()); // stale socket from a crashed daemon
  if (bind(ListenFd, reinterpret_cast<struct sockaddr *>(&Addr),
           sizeof(Addr)) < 0 ||
      listen(ListenFd, 8) < 0) {
    fprintf(stderr, "verifyd: bind %s: %s\n", SockPath.c_str(),
            strerror(errno));
    close(ListenFd);
    return 2;
  }

  std::vector<Client> Clients;
  // Every event goes to stdout (the daemon's log) and to every connected
  // subscriber — watch revisions broadcast, and a requesting client sees
  // its own terminating event because it is a subscriber too.
  EventSink Broadcast = [&Clients](const std::string &L) {
    fputs(L.c_str(), stdout);
    fputc('\n', stdout);
    fflush(stdout);
    std::string Line = L + "\n";
    for (Client &C : Clients)
      if (!C.Dead)
        writeAll(C, Line);
  };

  checkOnce(Broadcast, /*Force=*/true);

  bool Stop = false;
  char Chunk[4096];
  while (!Stop && !shutdownRequested()) {
    std::vector<struct pollfd> PFDs;
    PFDs.push_back({ListenFd, POLLIN, 0});
    for (const Client &C : Clients)
      PFDs.push_back({C.Fd, POLLIN, 0});

    int N = poll(PFDs.data(), PFDs.size(), static_cast<int>(O.PollMs));
    if (N < 0) {
      if (errno == EINTR)
        continue;
      break;
    }
    if (N == 0) {
      checkOnce(Broadcast, /*Force=*/false);
      continue;
    }

    if (PFDs[0].revents & POLLIN) {
      int Fd = accept(ListenFd, nullptr, nullptr);
      if (Fd >= 0)
        Clients.push_back(Client{Fd, {}, false});
    }

    // PFDs[I+1] belongs to Clients[I]; accept above only appended.
    for (size_t I = 0; I < Clients.size() && I + 1 < PFDs.size(); ++I) {
      Client &C = Clients[I];
      short Rev = PFDs[I + 1].revents;
      if (Rev & (POLLERR | POLLNVAL)) {
        C.Dead = true;
        continue;
      }
      if (!(Rev & (POLLIN | POLLHUP)))
        continue;
      ssize_t R = read(C.Fd, Chunk, sizeof(Chunk));
      if (R <= 0) {
        C.Dead = true;
        continue;
      }
      C.InBuf.append(Chunk, static_cast<size_t>(R));
      size_t NL;
      while (!Stop && (NL = C.InBuf.find('\n')) != std::string::npos) {
        std::string Line = C.InBuf.substr(0, NL);
        C.InBuf.erase(0, NL + 1);
        if (!handleLine(Line, Broadcast))
          Stop = true;
      }
    }

    for (size_t I = Clients.size(); I-- > 0;) {
      if (Clients[I].Dead) {
        close(Clients[I].Fd);
        Clients.erase(Clients.begin() + static_cast<ptrdiff_t>(I));
      }
    }
  }

  emitShutdown(Broadcast);
  for (Client &C : Clients)
    close(C.Fd);
  close(ListenFd);
  ::unlink(SockPath.c_str());
  return lastAllVerified() ? 0 : 1;
}
