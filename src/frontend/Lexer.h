//===- Lexer.h - Lexer for the annotated C subset --------------*- C++ -*-===//
//
// Part of RefinedC++, a C++ reproduction of the RefinedC verifier (PLDI'21).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A hand-written lexer for the C subset accepted by the front end, including
/// C2x attribute brackets `[[` `]]` (used for the `[[rc::...]]` annotations of
/// the paper) and string literals carrying specification DSL text.
///
//===----------------------------------------------------------------------===//

#ifndef RCC_FRONTEND_LEXER_H
#define RCC_FRONTEND_LEXER_H

#include "support/Diagnostics.h"
#include "support/SourceLoc.h"

#include <string>
#include <vector>

namespace rcc::front {

enum class TokKind : uint8_t {
  Eof,
  Ident,
  Keyword,
  Number,
  String,   ///< "..." with escapes resolved
  Punct,    ///< operators and punctuation, spelled in Text
  AttrOpen, ///< [[
  AttrClose ///< ]]
};

struct Token {
  TokKind K = TokKind::Eof;
  std::string Text;
  uint64_t IntVal = 0;
  rcc::SourceLoc Loc;
  /// One past the token's last character (same line for all tokens the
  /// lexer produces), giving parsers real ranges for diagnostics. The
  /// lexer's push() stamps this after construction.
  rcc::SourceLoc End = {};

  bool is(TokKind Kind) const { return K == Kind; }
  bool isPunct(const char *P) const { return K == TokKind::Punct && Text == P; }
  bool isKeyword(const char *KW) const {
    return K == TokKind::Keyword && Text == KW;
  }
  bool isIdent() const { return K == TokKind::Ident; }
};

/// Tokenizes \p Source. Errors are reported to \p Diags; lexing continues
/// best-effort so the parser can report more issues.
std::vector<Token> lexSource(const std::string &Source,
                             rcc::DiagnosticEngine &Diags);

} // namespace rcc::front

#endif // RCC_FRONTEND_LEXER_H
