//===- Parser.h - Recursive-descent parser for annotated C -----*- C++ -*-===//
//
// Part of RefinedC++, a C++ reproduction of the RefinedC verifier (PLDI'21).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses the C subset the case studies need: struct definitions (with
/// `[[rc::...]]` annotations in C2x attribute position), typedefs (including
/// the pointer-typedef idiom of Figure 3 and function-pointer typedefs),
/// globals, and function definitions with statements/expressions covering
/// loops, goto, pointer arithmetic, member access, calls through function
/// pointers, and the atomic builtins.
///
//===----------------------------------------------------------------------===//

#ifndef RCC_FRONTEND_PARSER_H
#define RCC_FRONTEND_PARSER_H

#include "frontend/CAst.h"
#include "frontend/Lexer.h"

#include <map>
#include <set>

namespace rcc::front {

class Parser {
public:
  Parser(std::vector<Token> Tokens, rcc::DiagnosticEngine &Diags)
      : Toks(std::move(Tokens)), Diags(Diags) {}

  /// Parses the whole token stream. On errors, diagnostics are reported and
  /// a best-effort (possibly partial) unit is returned.
  CTranslationUnit parseTranslationUnit();

private:
  // Token stream helpers.
  const Token &peek(int Ahead = 0) const;
  const Token &cur() const { return peek(0); }
  Token advance();
  bool atPunct(const char *P) const { return cur().isPunct(P); }
  bool atKeyword(const char *K) const { return cur().isKeyword(K); }
  bool eatPunct(const char *P);
  bool eatKeyword(const char *K);
  bool expectPunct(const char *P);
  void error(const std::string &Msg);
  void skipTo(const char *P);

  // Annotations.
  std::vector<RcAnnot> parseAnnotList();

  // Types.
  bool atTypeStart() const;
  CTypePtr parseTypeSpecifier(std::vector<RcAnnot> *StructAnnotsOut = nullptr);
  CTypePtr parseDeclarator(CTypePtr Base, std::string &Name,
                           bool AllowAbstract = false);
  CTypePtr parseFullType(); ///< specifier + abstract declarator (casts/sizeof)

  // Declarations.
  void parseTopLevel(CTranslationUnit &TU, std::vector<RcAnnot> Annots);
  void parseStructBody(CStructDecl &SD);
  std::vector<CParam> parseParamList();

  // Statements.
  CStmtPtr parseStmt();
  CStmtPtr parseCompound();
  CStmtPtr parseDeclStmt();

  // Expressions (precedence climbing).
  CExprPtr parseExpr();
  CExprPtr parseAssign();
  CExprPtr parseCond();
  CExprPtr parseBinary(int MinPrec);
  CExprPtr parseUnary();
  CExprPtr parsePostfix();
  CExprPtr parsePrimary();

  std::vector<Token> Toks;
  size_t Pos = 0;
  rcc::DiagnosticEngine &Diags;

  /// Range of the most recent name token consumed by parseDeclarator, so
  /// parseTopLevel can attribute a declaration to its name (for editor
  /// diagnostics, which want to underline the name, not the return type).
  rcc::SourceLoc LastNameLoc;
  rcc::SourceLoc LastNameEnd;

  std::set<std::string> StructNames;
  std::map<std::string, CTypePtr> Typedefs;
  CTranslationUnit *Unit = nullptr;
};

} // namespace rcc::front

#endif // RCC_FRONTEND_PARSER_H
