//===- Lexer.cpp ----------------------------------------------------------===//
//
// Part of RefinedC++, a C++ reproduction of the RefinedC verifier (PLDI'21).
//
//===----------------------------------------------------------------------===//

#include "frontend/Lexer.h"

#include <cctype>
#include <cstring>
#include <set>

using namespace rcc::front;

namespace {

const std::set<std::string> &keywords() {
  static const std::set<std::string> KW = {
      "void",     "char",   "short",    "int",      "long",     "unsigned",
      "signed",   "struct", "union",    "typedef",  "return",   "if",
      "else",     "while",  "for",      "do",       "break",    "continue",
      "goto",     "sizeof", "NULL",     "size_t",   "uint8_t",  "uint16_t",
      "uint32_t", "uint64_t", "int8_t", "int16_t",  "int32_t",  "int64_t",
      "bool",     "true",   "false",    "const",    "static",   "switch",
      "case",     "default", "_Bool",   "uintptr_t"};
  return KW;
}

struct LexState {
  const std::string &Src;
  size_t Pos = 0;
  uint32_t Line = 1;
  uint32_t Col = 1;
  rcc::DiagnosticEngine &Diags;

  char peek(size_t Ahead = 0) const {
    return Pos + Ahead < Src.size() ? Src[Pos + Ahead] : '\0';
  }
  char advance() {
    char C = peek();
    ++Pos;
    if (C == '\n') {
      ++Line;
      Col = 1;
    } else {
      ++Col;
    }
    return C;
  }
  rcc::SourceLoc loc() const { return {Line, Col}; }
};

bool isIdentStart(char C) {
  return std::isalpha(static_cast<unsigned char>(C)) || C == '_';
}
bool isIdentCont(char C) {
  return std::isalnum(static_cast<unsigned char>(C)) || C == '_';
}

} // namespace

std::vector<Token> rcc::front::lexSource(const std::string &Source,
                                         rcc::DiagnosticEngine &Diags) {
  LexState S{Source, 0, 1, 1, Diags};
  std::vector<Token> Out;

  // Every token is pushed through here so its end position (the lexer's
  // current location, one past the last consumed character) is recorded.
  auto push = [&](Token T) {
    T.End = S.loc();
    Out.push_back(std::move(T));
  };

  // Multi-character punctuators, longest first.
  static const char *Puncts[] = {
      "<<=", ">>=", "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=",
      "&&",  "||",  "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "...",
  };

  while (S.Pos < Source.size()) {
    char C = S.peek();
    // Whitespace.
    if (std::isspace(static_cast<unsigned char>(C))) {
      S.advance();
      continue;
    }
    // Comments.
    if (C == '/' && S.peek(1) == '/') {
      while (S.Pos < Source.size() && S.peek() != '\n')
        S.advance();
      continue;
    }
    if (C == '/' && S.peek(1) == '*') {
      S.advance();
      S.advance();
      while (S.Pos < Source.size() && !(S.peek() == '*' && S.peek(1) == '/'))
        S.advance();
      if (S.Pos < Source.size()) {
        S.advance();
        S.advance();
      }
      continue;
    }

    rcc::SourceLoc Loc = S.loc();

    // Attribute brackets.
    if (C == '[' && S.peek(1) == '[') {
      S.advance();
      S.advance();
      push({TokKind::AttrOpen, "[[", 0, Loc});
      continue;
    }
    if (C == ']' && S.peek(1) == ']') {
      S.advance();
      S.advance();
      push({TokKind::AttrClose, "]]", 0, Loc});
      continue;
    }

    // Identifiers and keywords.
    if (isIdentStart(C)) {
      std::string Text;
      while (isIdentCont(S.peek()))
        Text += S.advance();
      TokKind K = keywords().count(Text) ? TokKind::Keyword : TokKind::Ident;
      push({K, std::move(Text), 0, Loc});
      continue;
    }

    // Numbers (decimal and hex; optional U/L suffixes ignored). Literals
    // that do not fit in 64 bits are a hard diagnostic: silently wrapping
    // would hand the type checker a wrong constant, and a wrong constant in
    // an otherwise well-formed program is far worse than a rejection.
    if (std::isdigit(static_cast<unsigned char>(C))) {
      std::string Text;
      uint64_t Val = 0;
      bool Overflow = false;
      if (C == '0' && (S.peek(1) == 'x' || S.peek(1) == 'X')) {
        Text += S.advance();
        Text += S.advance();
        bool AnyDigit = false;
        while (std::isxdigit(static_cast<unsigned char>(S.peek()))) {
          char D = S.advance();
          Text += D;
          AnyDigit = true;
          uint64_t Dig =
              std::isdigit(static_cast<unsigned char>(D))
                  ? static_cast<uint64_t>(D - '0')
                  : static_cast<uint64_t>(
                        std::tolower(static_cast<unsigned char>(D)) - 'a' +
                        10);
          if (Val > (UINT64_MAX - Dig) / 16)
            Overflow = true;
          else
            Val = Val * 16 + Dig;
        }
        // A bare "0x" must not lex as the number 0 (with the 'x' then
        // re-lexed as an identifier, or worse).
        if (!AnyDigit)
          Diags.error(Loc, "hexadecimal literal '" + Text +
                               "' expects at least one digit");
      } else {
        while (std::isdigit(static_cast<unsigned char>(S.peek()))) {
          char D = S.advance();
          Text += D;
          uint64_t Dig = static_cast<uint64_t>(D - '0');
          if (Val > (UINT64_MAX - Dig) / 10)
            Overflow = true;
          else
            Val = Val * 10 + Dig;
        }
      }
      if (Overflow)
        Diags.error(Loc, "integer literal '" + Text +
                             "' does not fit in 64 bits");
      while (S.peek() == 'u' || S.peek() == 'U' || S.peek() == 'l' ||
             S.peek() == 'L')
        S.advance();
      push({TokKind::Number, std::move(Text), Val, Loc});
      continue;
    }

    // String literals (the payload of rc:: annotations).
    if (C == '"') {
      S.advance();
      std::string Text;
      while (S.Pos < Source.size() && S.peek() != '"') {
        char D = S.advance();
        if (D == '\\' && S.Pos < Source.size()) {
          char E = S.advance();
          switch (E) {
          case 'n':
            Text += '\n';
            break;
          case 't':
            Text += '\t';
            break;
          case '"':
            Text += '"';
            break;
          case '\\':
            Text += '\\';
            break;
          default:
            Text += E;
            break;
          }
          continue;
        }
        Text += D;
      }
      if (S.Pos >= Source.size())
        Diags.error(Loc, "unterminated string literal");
      else
        S.advance(); // closing quote
      push({TokKind::String, std::move(Text), 0, Loc});
      continue;
    }

    // Character literals -> integer tokens.
    if (C == '\'') {
      S.advance();
      char V = S.advance();
      if (V == '\\') {
        char E = S.advance();
        V = E == 'n' ? '\n' : E == 't' ? '\t' : E == '0' ? '\0' : E;
      }
      if (S.peek() == '\'')
        S.advance();
      else
        Diags.error(Loc, "unterminated character literal");
      push({TokKind::Number, std::string(1, V),
                     static_cast<uint64_t>(V), Loc});
      continue;
    }

    // Multi-character punctuators.
    bool Matched = false;
    for (const char *P : Puncts) {
      size_t Len = std::strlen(P);
      if (Source.compare(S.Pos, Len, P) == 0) {
        for (size_t I = 0; I < Len; ++I)
          S.advance();
        push({TokKind::Punct, P, 0, Loc});
        Matched = true;
        break;
      }
    }
    if (Matched)
      continue;

    // Single-character punctuators.
    static const std::string Singles = "+-*/%&|^~!<>=(){}[];,.:?";
    if (Singles.find(C) != std::string::npos) {
      S.advance();
      push({TokKind::Punct, std::string(1, C), 0, Loc});
      continue;
    }

    Diags.error(Loc, std::string("unexpected character '") + C + "'");
    S.advance();
  }

  push({TokKind::Eof, "", 0, S.loc()});
  return Out;
}
