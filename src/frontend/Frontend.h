//===- Frontend.h - Public front-end API ------------------------*- C++ -*-===//
//
// Part of RefinedC++, a C++ reproduction of the RefinedC verifier (PLDI'21).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The front end of Figure 2, step (A): compile annotated C source into a
/// Caesium program plus the annotation tables the RefinedC layer consumes.
/// Specifications are carried as raw strings here; the refinedc library
/// parses them against its type grammar (keeping this layer free of any
/// dependence on the type system, mirroring the paper's layering where the
/// front end is part of the TCB but the type system is not).
///
//===----------------------------------------------------------------------===//

#ifndef RCC_FRONTEND_FRONTEND_H
#define RCC_FRONTEND_FRONTEND_H

#include "caesium/Ast.h"
#include "frontend/CAst.h"
#include "support/Diagnostics.h"

#include <map>
#include <memory>
#include <string>

namespace rcc::front {

/// A struct definition together with its computed physical layout and its
/// RefinedC annotations (refined_by / field / exists / constraints / size /
/// ptr_type).
struct StructInfo {
  std::string Name;
  caesium::StructLayout Layout;
  std::vector<CStructField> Fields; ///< with per-field annotations
  std::vector<RcAnnot> Annots;
  std::string PtrTypedefName;
  rcc::SourceLoc Loc;
};

/// Function-level metadata: the C signature, the rc:: spec annotations, and
/// the loop-annotation table indexed by the AnnotId stored on loop-head
/// blocks during lowering.
struct FnInfo {
  std::string Name;
  CTypePtr RetTy;
  std::vector<CParam> Params;
  std::vector<RcAnnot> Annots;
  std::vector<std::vector<RcAnnot>> LoopAnnots;
  /// C types of locals by their (possibly uniqued) Caesium slot name.
  std::map<std::string, CTypePtr> LocalTypes;
  rcc::SourceLoc Loc;
  bool HasBody = false;
  /// Full extent of the declaration ([Loc, one past `}`/`;`)) and the range
  /// of the function name token — what an editor should underline when a
  /// failure has no better location.
  rcc::SourceRange Range;
  rcc::SourceRange NameRange;
};

struct GlobalInfo {
  std::string Name;
  CTypePtr Ty;
  std::vector<RcAnnot> Annots;
  rcc::SourceLoc Loc;
};

/// The complete front-end output.
struct AnnotatedProgram {
  caesium::Program Prog;
  std::map<std::string, StructInfo> Structs;
  std::map<std::string, FnInfo> Fns;
  std::vector<CTypedef> Typedefs;
  std::map<std::string, GlobalInfo> Globals;
  std::string Source;

  const StructInfo *structInfo(const std::string &Name) const {
    auto It = Structs.find(Name);
    return It == Structs.end() ? nullptr : &It->second;
  }
};

/// Compiles annotated C source. Returns nullptr when \p Diags has errors.
std::unique_ptr<AnnotatedProgram> compileSource(const std::string &Source,
                                                rcc::DiagnosticEngine &Diags);

} // namespace rcc::front

#endif // RCC_FRONTEND_FRONTEND_H
