//===- Lower.cpp - Type-check and lower annotated C to Caesium ------------===//
//
// Part of RefinedC++, a C++ reproduction of the RefinedC verifier (PLDI'21).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Elaborates the C AST: resolves types, computes struct layouts, performs
/// the usual arithmetic conversions (inserting explicit Caesium casts), and
/// lowers statements into the CFG representation with a fixed left-to-right
/// evaluation order (Section 3: Caesium fixes evaluation order, so the
/// non-determinism of C expression evaluation is resolved here, with
/// short-circuit operators lowered to control flow through temporaries).
///
//===----------------------------------------------------------------------===//

#include "frontend/Frontend.h"
#include "frontend/Parser.h"
#include "trace/Trace.h"

using namespace rcc::front;
using namespace rcc::caesium;

namespace {

struct LocalVar {
  std::string SlotName; ///< possibly uniqued Caesium slot name
  CTypePtr Ty;
};

class Lowerer {
public:
  Lowerer(rcc::DiagnosticEngine &Diags) : Diags(Diags) {}

  std::unique_ptr<AnnotatedProgram> run(CTranslationUnit &TU,
                                        std::string Source);

private:
  // --- Tables ---
  rcc::DiagnosticEngine &Diags;
  AnnotatedProgram *AP = nullptr;
  std::map<std::string, CTypePtr> FuncTypes;   ///< name -> Func type
  std::map<std::string, CTypePtr> GlobalTypes; ///< name -> object type

  // --- Per-function state ---
  Function *F = nullptr;
  FnInfo *FI = nullptr;
  std::vector<std::map<std::string, LocalVar>> Scopes;
  unsigned CurBlock = 0;
  bool Terminated = false;
  std::vector<std::pair<unsigned, unsigned>> LoopStack; ///< (continue, break)
  std::map<std::string, unsigned> Labels;
  unsigned TempCounter = 0;
  std::map<std::string, unsigned> NameCounts;

  // --- Type utilities ---
  Layout typeLayout(CTypePtr T, rcc::SourceLoc Loc);
  uint64_t typeSize(CTypePtr T, rcc::SourceLoc Loc) {
    return typeLayout(T, Loc).Size;
  }
  uint64_t pointeeSize(CTypePtr PtrTy, rcc::SourceLoc Loc);
  CTypePtr usualArith(CTypePtr A, CTypePtr B);

  // --- CFG helpers ---
  unsigned newBlock() {
    F->Blocks.emplace_back();
    return static_cast<unsigned>(F->Blocks.size() - 1);
  }
  void append(Stmt S) {
    if (Terminated)
      return; // dead code after a terminator
    F->Blocks[CurBlock].Stmts.push_back(std::move(S));
  }
  void terminateGoto(unsigned Target) {
    if (Terminated)
      return;
    Stmt S;
    S.K = StmtKind::Goto;
    S.Target1 = Target;
    F->Blocks[CurBlock].Stmts.push_back(std::move(S));
    Terminated = true;
  }
  void terminateCond(ExprPtr Cond, unsigned Then, unsigned Else,
                     rcc::SourceLoc Loc) {
    if (Terminated)
      return;
    Stmt S;
    S.K = StmtKind::CondGoto;
    S.E = std::move(Cond);
    S.Target1 = Then;
    S.Target2 = Else;
    S.Loc = Loc;
    F->Blocks[CurBlock].Stmts.push_back(std::move(S));
    Terminated = true;
  }
  void terminateReturn(ExprPtr V, rcc::SourceLoc Loc) {
    if (Terminated)
      return;
    Stmt S;
    S.K = StmtKind::Return;
    S.E = std::move(V);
    S.Loc = Loc;
    F->Blocks[CurBlock].Stmts.push_back(std::move(S));
    Terminated = true;
  }
  void switchTo(unsigned B) {
    CurBlock = B;
    Terminated = false;
  }

  // --- Scope helpers ---
  const LocalVar *lookupLocal(const std::string &Name) {
    for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It) {
      auto F2 = It->find(Name);
      if (F2 != It->end())
        return &F2->second;
    }
    return nullptr;
  }
  std::string declareLocal(const std::string &Name, CTypePtr Ty,
                           rcc::SourceLoc Loc) {
    unsigned N = NameCounts[Name]++;
    std::string Slot = N == 0 ? Name : Name + "$" + std::to_string(N);
    F->Locals.push_back({Slot, typeSize(Ty, Loc)});
    Scopes.back()[Name] = {Slot, Ty};
    FI->LocalTypes[Slot] = Ty;
    return Slot;
  }
  std::string newTemp(CTypePtr Ty, rcc::SourceLoc Loc) {
    std::string Slot = "$t" + std::to_string(TempCounter++);
    F->Locals.push_back({Slot, typeSize(Ty, Loc)});
    FI->LocalTypes[Slot] = Ty;
    return Slot;
  }

  // --- Lowering ---
  struct RV {
    ExprPtr E;
    CTypePtr Ty;
  };
  RV rval(const CExpr &E);
  RV lval(const CExpr &E); ///< E lowers to an *address*; Ty is the object type
  ExprPtr rvalAs(const CExpr &E, CTypePtr Target);
  ExprPtr convert(ExprPtr E, CTypePtr From, CTypePtr To, rcc::SourceLoc Loc);
  ExprPtr condition(const CExpr &E); ///< integer (or pointer-null) test
  RV lowerShortCircuit(const CExpr &E);
  RV lowerConditional(const CExpr &E);
  RV lowerCall(const CExpr &E);
  RV lowerAssignLike(const CExpr &E);

  void lowerStmt(const CStmt &S);
  void lowerFunction(const CFuncDecl &FD);
  unsigned labelBlock(const std::string &Name) {
    auto It = Labels.find(Name);
    if (It != Labels.end())
      return It->second;
    unsigned B = newBlock();
    Labels[Name] = B;
    return B;
  }

  RV errorRV(rcc::SourceLoc Loc, const std::string &Msg) {
    Diags.error(Loc, Msg);
    return {mkConstInt(intI32(), 0, Loc), ctInt(intI32())};
  }
};

//===----------------------------------------------------------------------===//
// Types
//===----------------------------------------------------------------------===//

Layout Lowerer::typeLayout(CTypePtr T, rcc::SourceLoc Loc) {
  switch (T->K) {
  case CTypeKind::Void:
    return {0, 1};
  case CTypeKind::Int:
    return layoutOfInt(T->Ity);
  case CTypeKind::Pointer:
    return layoutOfPtr();
  case CTypeKind::Struct: {
    const StructInfo *SI = AP->structInfo(T->StructName);
    if (!SI) {
      Diags.error(Loc, "use of undefined struct '" + T->StructName + "'");
      return {1, 1};
    }
    return {SI->Layout.Size, SI->Layout.Align};
  }
  case CTypeKind::Array: {
    Layout E = typeLayout(T->Pointee, Loc);
    return {E.Size * T->ArrayLen, E.Align};
  }
  case CTypeKind::Func:
    Diags.error(Loc, "function types have no object layout");
    return {1, 1};
  }
  return {1, 1};
}

uint64_t Lowerer::pointeeSize(CTypePtr PtrTy, rcc::SourceLoc Loc) {
  assert(PtrTy->isPointer() && "pointeeSize on non-pointer");
  CTypePtr P = PtrTy->Pointee;
  if (P->isVoid() || P->isFunc())
    return 1;
  return typeSize(P, Loc);
}

CTypePtr Lowerer::usualArith(CTypePtr A, CTypePtr B) {
  if (!A->isInt() || !B->isInt())
    return A->isInt() ? A : B;
  IntType IA = A->Ity, IB = B->Ity;
  // Integer promotion to at least int.
  auto Promote = [](IntType I) {
    return I.ByteSize < 4 ? intI32() : I;
  };
  IA = Promote(IA);
  IB = Promote(IB);
  if (IA.ByteSize == IB.ByteSize)
    return ctInt(IntType{IA.ByteSize, IA.Signed && IB.Signed});
  return ctInt(IA.ByteSize > IB.ByteSize ? IA : IB);
}

ExprPtr Lowerer::convert(ExprPtr E, CTypePtr From, CTypePtr To,
                         rcc::SourceLoc Loc) {
  if (From->isInt() && To->isInt()) {
    if (From->Ity == To->Ity)
      return E;
    return mkCast(From->Ity, To->Ity, std::move(E), Loc);
  }
  // Pointer conversions (incl. array decay handled by callers) are identity.
  return E;
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

Lowerer::RV Lowerer::lval(const CExpr &E) {
  switch (E.K) {
  case CExprKind::Ident: {
    if (const LocalVar *LV = lookupLocal(E.Name))
      return {mkAddrLocal(LV->SlotName, E.Loc), LV->Ty};
    auto GI = GlobalTypes.find(E.Name);
    if (GI != GlobalTypes.end())
      return {mkAddrGlobal(E.Name, E.Loc), GI->second};
    return errorRV(E.Loc, "use of undeclared identifier '" + E.Name + "'");
  }
  case CExprKind::Deref: {
    RV P = rval(*E.Kids[0]);
    if (!P.Ty->isPointer())
      return errorRV(E.Loc, "dereference of non-pointer");
    return {std::move(P.E), P.Ty->Pointee};
  }
  case CExprKind::Member: {
    RV Base;
    CTypePtr StructTy;
    if (E.IsArrow) {
      Base = rval(*E.Kids[0]);
      if (!Base.Ty->isPointer() || !Base.Ty->Pointee->isStruct())
        return errorRV(E.Loc, "'->' applied to non-struct-pointer");
      StructTy = Base.Ty->Pointee;
    } else {
      Base = lval(*E.Kids[0]);
      if (!Base.Ty->isStruct())
        return errorRV(E.Loc, "'.' applied to non-struct");
      StructTy = Base.Ty;
    }
    const StructInfo *SI = AP->structInfo(StructTy->StructName);
    if (!SI)
      return errorRV(E.Loc, "undefined struct '" + StructTy->StructName + "'");
    const FieldLayout *FL = SI->Layout.field(E.Name);
    if (!FL)
      return errorRV(E.Loc, "no field '" + E.Name + "' in struct " +
                                StructTy->StructName);
    CTypePtr FieldTy;
    for (const CStructField &CF : SI->Fields)
      if (CF.Name == E.Name)
        FieldTy = CF.Ty;
    ExprPtr Addr = mkPtrOp(BinOpKind::PtrAdd, 1, std::move(Base.E),
                           mkConstInt(intU64(), FL->Offset, E.Loc), E.Loc);
    return {std::move(Addr), FieldTy};
  }
  case CExprKind::Index: {
    RV Base;
    CTypePtr ElemTy;
    const CExpr &B = *E.Kids[0];
    // Arrays used as lvalues index in place; pointers load first.
    RV Probe = B.K == CExprKind::Ident && lookupLocal(B.Name) &&
                       lookupLocal(B.Name)->Ty->isArray()
                   ? lval(B)
                   : rval(B);
    if (Probe.Ty->isArray()) {
      ElemTy = Probe.Ty->Pointee;
    } else if (Probe.Ty->isPointer()) {
      ElemTy = Probe.Ty->Pointee;
    } else {
      return errorRV(E.Loc, "subscript of non-pointer");
    }
    ExprPtr Idx = rvalAs(*E.Kids[1], ctInt(intU64()));
    ExprPtr Addr =
        mkPtrOp(BinOpKind::PtrAdd, typeSize(ElemTy, E.Loc),
                std::move(Probe.E), std::move(Idx), E.Loc);
    return {std::move(Addr), ElemTy};
  }
  default:
    return errorRV(E.Loc, "expression is not an lvalue");
  }
}

ExprPtr Lowerer::rvalAs(const CExpr &E, CTypePtr Target) {
  // Literals take the target type directly.
  if (E.K == CExprKind::IntLit && Target->isInt())
    return mkConstInt(Target->Ity, static_cast<int64_t>(E.IntVal), E.Loc);
  if (E.K == CExprKind::Null && Target->isPointer())
    return mkNullPtr(E.Loc);
  if (E.K == CExprKind::IntLit && E.IntVal == 0 && Target->isPointer())
    return mkNullPtr(E.Loc);
  RV V = rval(E);
  return convert(std::move(V.E), V.Ty, Target, E.Loc);
}

ExprPtr Lowerer::condition(const CExpr &E) {
  RV V = rval(E);
  if (V.Ty->isPointer()) {
    // `if (p)` tests non-nullness.
    return mkPtrOp(BinOpKind::PtrNe, 1, std::move(V.E), mkNullPtr(E.Loc),
                   E.Loc);
  }
  return std::move(V.E);
}

Lowerer::RV Lowerer::lowerShortCircuit(const CExpr &E) {
  bool IsAnd = E.OpText == "&&";
  std::string T = newTemp(ctInt(intI32()), E.Loc);
  unsigned RhsB = newBlock(), ShortB = newBlock(), JoinB = newBlock();
  ExprPtr C1 = condition(*E.Kids[0]);
  if (IsAnd)
    terminateCond(std::move(C1), RhsB, ShortB, E.Loc);
  else
    terminateCond(std::move(C1), ShortB, RhsB, E.Loc);

  switchTo(RhsB);
  ExprPtr C2 = condition(*E.Kids[1]);
  // Normalize to 0/1.
  ExprPtr Norm =
      mkBinOp(BinOpKind::NeOp, intI32(), std::move(C2),
              mkConstInt(intI32(), 0, E.Loc), E.Loc);
  Stmt S1;
  S1.K = StmtKind::ExprS;
  S1.E = mkStore(4, mkAddrLocal(T, E.Loc), std::move(Norm), MemOrder::NonAtomic,
                 E.Loc);
  append(std::move(S1));
  terminateGoto(JoinB);

  switchTo(ShortB);
  Stmt S2;
  S2.K = StmtKind::ExprS;
  S2.E = mkStore(4, mkAddrLocal(T, E.Loc),
                 mkConstInt(intI32(), IsAnd ? 0 : 1, E.Loc),
                 MemOrder::NonAtomic, E.Loc);
  append(std::move(S2));
  terminateGoto(JoinB);

  switchTo(JoinB);
  return {mkUse(4, mkAddrLocal(T, E.Loc), MemOrder::NonAtomic, E.Loc),
          ctInt(intI32())};
}

Lowerer::RV Lowerer::lowerConditional(const CExpr &E) {
  // Determine the common type by lowering both arms into branch blocks.
  unsigned ThenB = newBlock(), ElseB = newBlock(), JoinB = newBlock();
  ExprPtr C = condition(*E.Kids[0]);
  terminateCond(std::move(C), ThenB, ElseB, E.Loc);

  // Lower each arm once; an arm may itself create blocks (nested ?:, &&),
  // so remember where its evaluation *ends* — the store continues there.
  switchTo(ThenB);
  RV TV = rval(*E.Kids[1]);
  CTypePtr ThenTy = TV.Ty;
  unsigned ThenEnd = CurBlock;
  switchTo(ElseB);
  RV EV = rval(*E.Kids[2]);
  CTypePtr ElseTy = EV.Ty;
  unsigned ElseEnd = CurBlock;
  CTypePtr Common = ThenTy->isPointer() ? ThenTy
                    : ElseTy->isPointer() ? ElseTy
                                          : usualArith(ThenTy, ElseTy);
  std::string T = newTemp(Common, E.Loc);
  uint64_t Size = typeSize(Common, E.Loc);

  switchTo(ThenEnd);
  Stmt S1;
  S1.K = StmtKind::ExprS;
  S1.E = mkStore(Size, mkAddrLocal(T, E.Loc),
                 convert(std::move(TV.E), ThenTy, Common, E.Loc),
                 MemOrder::NonAtomic, E.Loc);
  append(std::move(S1));
  terminateGoto(JoinB);

  switchTo(ElseEnd);
  Stmt S2;
  S2.K = StmtKind::ExprS;
  S2.E = mkStore(Size, mkAddrLocal(T, E.Loc),
                 convert(std::move(EV.E), ElseTy, Common, E.Loc),
                 MemOrder::NonAtomic, E.Loc);
  append(std::move(S2));
  terminateGoto(JoinB);

  switchTo(JoinB);
  return {mkUse(Size, mkAddrLocal(T, E.Loc), MemOrder::NonAtomic, E.Loc),
          Common};
}

Lowerer::RV Lowerer::lowerCall(const CExpr &E) {
  const CExpr &Callee = *E.Kids[0];

  // Atomic builtins lower to dedicated Caesium operations.
  if (Callee.K == CExprKind::Ident) {
    const std::string &N = Callee.Name;
    if (N == "atomic_load") {
      if (E.Kids.size() != 2)
        return errorRV(E.Loc, "atomic_load expects one argument");
      RV P = rval(*E.Kids[1]);
      if (!P.Ty->isPointer() || !P.Ty->Pointee->isInt())
        return errorRV(E.Loc, "atomic_load expects an integer pointer");
      uint64_t Sz = typeSize(P.Ty->Pointee, E.Loc);
      return {mkUse(Sz, std::move(P.E), MemOrder::SeqCst, E.Loc),
              P.Ty->Pointee};
    }
    if (N == "atomic_store") {
      if (E.Kids.size() != 3)
        return errorRV(E.Loc, "atomic_store expects two arguments");
      RV P = rval(*E.Kids[1]);
      if (!P.Ty->isPointer() || !P.Ty->Pointee->isInt())
        return errorRV(E.Loc, "atomic_store expects an integer pointer");
      uint64_t Sz = typeSize(P.Ty->Pointee, E.Loc);
      ExprPtr V = rvalAs(*E.Kids[2], P.Ty->Pointee);
      return {mkStore(Sz, std::move(P.E), std::move(V), MemOrder::SeqCst,
                      E.Loc),
              ctVoid()};
    }
    if (N == "atomic_compare_exchange_strong") {
      if (E.Kids.size() != 4)
        return errorRV(E.Loc, "CAS expects three arguments");
      RV A = rval(*E.Kids[1]);
      RV X = rval(*E.Kids[2]);
      if (!A.Ty->isPointer() || !A.Ty->Pointee->isInt() || !X.Ty->isPointer())
        return errorRV(E.Loc, "CAS expects integer pointers");
      uint64_t Sz = typeSize(A.Ty->Pointee, E.Loc);
      ExprPtr D = rvalAs(*E.Kids[3], A.Ty->Pointee);
      return {mkCAS(Sz, std::move(A.E), std::move(X.E), std::move(D), E.Loc),
              ctInt(intI32())};
    }
  }

  // Resolve the callee function type.
  ExprPtr CalleeE;
  CTypePtr FnTy;
  if (Callee.K == CExprKind::Ident && !lookupLocal(Callee.Name)) {
    auto It = FuncTypes.find(Callee.Name);
    if (It != FuncTypes.end()) {
      CalleeE = mkAddrGlobal(Callee.Name, E.Loc);
      FnTy = It->second;
    } else {
      // Built-in runtime helpers.
      static const std::map<std::string, std::pair<const char *, int>> Bs = {
          {"rc_spawn", {"int", 2}},  {"rc_join", {"int", 1}},
          {"rc_alloc", {"ptr", 1}},  {"rc_free", {"void", 1}},
          {"rc_assert", {"void", 1}}};
      auto BIt = Bs.find(Callee.Name);
      if (BIt == Bs.end())
        return errorRV(E.Loc, "call to undeclared function '" + Callee.Name +
                                  "'");
      std::vector<ExprPtr> Args;
      for (size_t I = 1; I < E.Kids.size(); ++I) {
        // Builtins take naturally-typed arguments; size-sensitive ones are
        // normalized below.
        if (Callee.Name == "rc_alloc")
          Args.push_back(rvalAs(*E.Kids[I], ctInt(intU64())));
        else if (Callee.Name == "rc_join" || Callee.Name == "rc_assert")
          Args.push_back(rvalAs(*E.Kids[I], ctInt(intI32())));
        else {
          RV V = rval(*E.Kids[I]);
          Args.push_back(std::move(V.E));
        }
      }
      CTypePtr Ret = BIt->second.first == std::string("int")
                         ? ctInt(intI32())
                     : BIt->second.first == std::string("ptr")
                         ? ctPtr(ctVoid())
                         : ctVoid();
      return {mkCall(mkAddrGlobal(Callee.Name, E.Loc), std::move(Args),
                     E.Loc),
              Ret};
    }
  } else {
    RV CV = rval(Callee);
    if (CV.Ty->isPointer() && CV.Ty->Pointee->isFunc())
      FnTy = CV.Ty->Pointee;
    else if (CV.Ty->isFunc())
      FnTy = CV.Ty;
    else
      return errorRV(E.Loc, "called object is not a function");
    CalleeE = std::move(CV.E);
  }

  std::vector<ExprPtr> Args;
  size_t NParams = FnTy->Params.size();
  if (E.Kids.size() - 1 != NParams)
    return errorRV(E.Loc, "wrong number of arguments in call");
  for (size_t I = 0; I < NParams; ++I)
    Args.push_back(rvalAs(*E.Kids[I + 1], FnTy->Params[I]));
  return {mkCall(std::move(CalleeE), std::move(Args), E.Loc), FnTy->Ret};
}

Lowerer::RV Lowerer::lowerAssignLike(const CExpr &E) {
  RV L = lval(*E.Kids[0]);
  CTypePtr Ty = L.Ty;
  uint64_t Size = typeSize(Ty, E.Loc);
  if (Ty->isStruct())
    return errorRV(E.Loc, "struct assignment is not supported");

  if (E.K == CExprKind::Assign) {
    ExprPtr V = rvalAs(*E.Kids[1], Ty);
    return {mkStore(Size, std::move(L.E), std::move(V), MemOrder::NonAtomic,
                    E.Loc),
            Ty};
  }

  // Compound assignment / inc-dec: reload through a re-lowered address (the
  // address expressions in our subset are side-effect free).
  auto Reload = [&]() {
    RV L2 = lval(*E.Kids[0]);
    return mkUse(Size, std::move(L2.E), MemOrder::NonAtomic, E.Loc);
  };

  ExprPtr NewVal;
  if (E.K == CExprKind::IncDec) {
    if (Ty->isPointer()) {
      NewVal = mkPtrOp(E.IsDecrement ? BinOpKind::PtrSub : BinOpKind::PtrAdd,
                       pointeeSize(Ty, E.Loc), Reload(),
                       mkConstInt(intU64(), 1, E.Loc), E.Loc);
    } else {
      NewVal = mkBinOp(E.IsDecrement ? BinOpKind::Sub : BinOpKind::Add,
                       Ty->Ity, Reload(),
                       mkConstInt(Ty->Ity, 1, E.Loc), E.Loc);
    }
  } else {
    const std::string &Op = E.OpText;
    if (Ty->isPointer() && (Op == "+" || Op == "-")) {
      ExprPtr R = rvalAs(*E.Kids[1], ctInt(intU64()));
      NewVal = mkPtrOp(Op == "+" ? BinOpKind::PtrAdd : BinOpKind::PtrSub,
                       pointeeSize(Ty, E.Loc), Reload(), std::move(R), E.Loc);
    } else if (Ty->isInt()) {
      BinOpKind K = Op == "+"    ? BinOpKind::Add
                    : Op == "-"  ? BinOpKind::Sub
                    : Op == "*"  ? BinOpKind::Mul
                    : Op == "/"  ? BinOpKind::Div
                    : Op == "%"  ? BinOpKind::Mod
                    : Op == "&"  ? BinOpKind::BitAnd
                    : Op == "|"  ? BinOpKind::BitOr
                    : Op == "^"  ? BinOpKind::BitXor
                    : Op == "<<" ? BinOpKind::Shl
                                 : BinOpKind::Shr;
      ExprPtr R = rvalAs(*E.Kids[1], Ty);
      NewVal = mkBinOp(K, Ty->Ity, Reload(), std::move(R), E.Loc);
    } else {
      return errorRV(E.Loc, "invalid compound assignment");
    }
  }
  return {mkStore(Size, std::move(L.E), std::move(NewVal),
                  MemOrder::NonAtomic, E.Loc),
          Ty};
}

Lowerer::RV Lowerer::rval(const CExpr &E) {
  switch (E.K) {
  case CExprKind::IntLit: {
    // Literals default to int; wide literals widen.
    IntType Ity = E.IntVal <= INT32_MAX ? intI32() : intU64();
    return {mkConstInt(Ity, static_cast<int64_t>(E.IntVal), E.Loc),
            ctInt(Ity)};
  }
  case CExprKind::Null:
    return {mkNullPtr(E.Loc), ctPtr(ctVoid())};
  case CExprKind::Ident: {
    if (const LocalVar *LV = lookupLocal(E.Name)) {
      if (LV->Ty->isArray())
        return {mkAddrLocal(LV->SlotName, E.Loc), ctPtr(LV->Ty->Pointee)};
      return {mkUse(typeSize(LV->Ty, E.Loc), mkAddrLocal(LV->SlotName, E.Loc),
                    MemOrder::NonAtomic, E.Loc),
              LV->Ty};
    }
    auto GI = GlobalTypes.find(E.Name);
    if (GI != GlobalTypes.end()) {
      if (GI->second->isArray())
        return {mkAddrGlobal(E.Name, E.Loc), ctPtr(GI->second->Pointee)};
      return {mkUse(typeSize(GI->second, E.Loc), mkAddrGlobal(E.Name, E.Loc),
                    MemOrder::NonAtomic, E.Loc),
              GI->second};
    }
    auto FT = FuncTypes.find(E.Name);
    if (FT != FuncTypes.end())
      return {mkAddrGlobal(E.Name, E.Loc), ctPtr(FT->second)};
    return errorRV(E.Loc, "use of undeclared identifier '" + E.Name + "'");
  }
  case CExprKind::Deref:
  case CExprKind::Member:
  case CExprKind::Index: {
    RV L = lval(E);
    if (L.Ty->isStruct())
      return errorRV(E.Loc, "struct values cannot be loaded directly");
    if (L.Ty->isArray())
      return {std::move(L.E), ctPtr(L.Ty->Pointee)};
    return {mkUse(typeSize(L.Ty, E.Loc), std::move(L.E),
                  MemOrder::NonAtomic, E.Loc),
            L.Ty};
  }
  case CExprKind::AddrOf: {
    const CExpr &Sub = *E.Kids[0];
    // &function-name yields a function pointer.
    if (Sub.K == CExprKind::Ident && !lookupLocal(Sub.Name) &&
        FuncTypes.count(Sub.Name))
      return {mkAddrGlobal(Sub.Name, E.Loc), ctPtr(FuncTypes[Sub.Name])};
    RV L = lval(Sub);
    return {std::move(L.E), ctPtr(L.Ty)};
  }
  case CExprKind::Unary: {
    if (E.OpText == "!") {
      RV V = rval(*E.Kids[0]);
      if (V.Ty->isPointer())
        return {mkPtrOp(BinOpKind::PtrEq, 1, std::move(V.E),
                        mkNullPtr(E.Loc), E.Loc),
                ctInt(intI32())};
      return {mkUnOp(UnOpKind::LogicalNot,
                     V.Ty->isInt() ? V.Ty->Ity : intI32(), std::move(V.E),
                     E.Loc),
              ctInt(intI32())};
    }
    CTypePtr Promoted = usualArith(ctInt(intI32()), ctInt(intI32()));
    RV V = rval(*E.Kids[0]);
    if (!V.Ty->isInt())
      return errorRV(E.Loc, "arithmetic unary operator on non-integer");
    CTypePtr Ty = usualArith(V.Ty, Promoted);
    ExprPtr Op = convert(std::move(V.E), V.Ty, Ty, E.Loc);
    if (E.OpText == "-")
      return {mkUnOp(UnOpKind::Neg, Ty->Ity, std::move(Op), E.Loc), Ty};
    return {mkUnOp(UnOpKind::BitNot, Ty->Ity, std::move(Op), E.Loc), Ty};
  }
  case CExprKind::Binary: {
    const std::string &Op = E.OpText;
    if (Op == "&&" || Op == "||")
      return lowerShortCircuit(E);

    RV L = rval(*E.Kids[0]);
    // Pointer arithmetic / comparison.
    if (L.Ty->isPointer() || E.Kids[1]->K == CExprKind::Null) {
      if (Op == "+" || Op == "-") {
        RV R = rval(*E.Kids[1]);
        if (R.Ty->isPointer()) {
          if (Op != "-")
            return errorRV(E.Loc, "invalid pointer addition");
          return {mkPtrOp(BinOpKind::PtrDiff, pointeeSize(L.Ty, E.Loc),
                          std::move(L.E), std::move(R.E), E.Loc),
                  ctInt(intI64())};
        }
        ExprPtr RI = convert(std::move(R.E), R.Ty, ctInt(intU64()), E.Loc);
        return {mkPtrOp(Op == "+" ? BinOpKind::PtrAdd : BinOpKind::PtrSub,
                        pointeeSize(L.Ty, E.Loc), std::move(L.E),
                        std::move(RI), E.Loc),
                L.Ty};
      }
      if (Op == "==" || Op == "!=") {
        ExprPtr RP = E.Kids[1]->K == CExprKind::Null
                         ? mkNullPtr(E.Loc)
                         : rval(*E.Kids[1]).E;
        ExprPtr LP = L.Ty->isPointer() ? std::move(L.E) : mkNullPtr(E.Loc);
        return {mkPtrOp(Op == "==" ? BinOpKind::PtrEq : BinOpKind::PtrNe, 1,
                        std::move(LP), std::move(RP), E.Loc),
                ctInt(intI32())};
      }
    }
    // int + ptr.
    if (Op == "+" && L.Ty->isInt()) {
      // Peek: is the rhs a pointer?
      RV R = rval(*E.Kids[1]);
      if (R.Ty->isPointer()) {
        ExprPtr LI = convert(std::move(L.E), L.Ty, ctInt(intU64()), E.Loc);
        return {mkPtrOp(BinOpKind::PtrAdd, pointeeSize(R.Ty, E.Loc),
                        std::move(R.E), std::move(LI), E.Loc),
                R.Ty};
      }
      CTypePtr Ty = usualArith(L.Ty, R.Ty);
      return {mkBinOp(BinOpKind::Add, Ty->Ity,
                      convert(std::move(L.E), L.Ty, Ty, E.Loc),
                      convert(std::move(R.E), R.Ty, Ty, E.Loc), E.Loc),
              Ty};
    }

    RV R = rval(*E.Kids[1]);
    if (!L.Ty->isInt() || !R.Ty->isInt())
      return errorRV(E.Loc, "invalid operands to binary '" + Op + "'");
    CTypePtr Ty = usualArith(L.Ty, R.Ty);
    ExprPtr LC = convert(std::move(L.E), L.Ty, Ty, E.Loc);
    ExprPtr RC = convert(std::move(R.E), R.Ty, Ty, E.Loc);
    struct OpMap {
      const char *Text;
      BinOpKind K;
      bool Cmp;
    };
    static const OpMap Ops[] = {
        {"+", BinOpKind::Add, false},   {"-", BinOpKind::Sub, false},
        {"*", BinOpKind::Mul, false},   {"/", BinOpKind::Div, false},
        {"%", BinOpKind::Mod, false},   {"&", BinOpKind::BitAnd, false},
        {"|", BinOpKind::BitOr, false}, {"^", BinOpKind::BitXor, false},
        {"<<", BinOpKind::Shl, false},  {">>", BinOpKind::Shr, false},
        {"==", BinOpKind::EqOp, true},  {"!=", BinOpKind::NeOp, true},
        {"<", BinOpKind::LtOp, true},   {"<=", BinOpKind::LeOp, true},
        {">", BinOpKind::GtOp, true},   {">=", BinOpKind::GeOp, true},
    };
    for (const OpMap &M : Ops) {
      if (Op == M.Text)
        return {mkBinOp(M.K, Ty->Ity, std::move(LC), std::move(RC), E.Loc),
                M.Cmp ? ctInt(intI32()) : Ty};
    }
    return errorRV(E.Loc, "unsupported binary operator '" + Op + "'");
  }
  case CExprKind::Assign:
  case CExprKind::CompoundAssign:
  case CExprKind::IncDec:
    // As expressions, these evaluate to the stored value (for post-inc/dec we
    // do not support value use; the store result is the *new* value).
    if (E.K == CExprKind::IncDec && E.IsPost)
      Diags.warning(E.Loc, "value of post-increment is the updated value in "
                           "this subset; use pre-increment for clarity");
    return lowerAssignLike(E);
  case CExprKind::Call:
    return lowerCall(E);
  case CExprKind::Cast: {
    if (E.CastTo->isPointer()) {
      RV V = rval(*E.Kids[0]);
      if (V.Ty->isPointer() || E.Kids[0]->K == CExprKind::Null)
        return {std::move(V.E), E.CastTo};
      if (V.Ty->isInt() && E.Kids[0]->K == CExprKind::IntLit &&
          E.Kids[0]->IntVal == 0)
        return {mkNullPtr(E.Loc), E.CastTo};
      return errorRV(E.Loc, "integer-to-pointer casts are not supported");
    }
    if (E.CastTo->isInt()) {
      RV V = rval(*E.Kids[0]);
      if (!V.Ty->isInt())
        return errorRV(E.Loc, "pointer-to-integer casts are not supported");
      return {convert(std::move(V.E), V.Ty, E.CastTo, E.Loc), E.CastTo};
    }
    if (E.CastTo->isVoid()) {
      RV V = rval(*E.Kids[0]);
      return {std::move(V.E), ctVoid()};
    }
    return errorRV(E.Loc, "unsupported cast");
  }
  case CExprKind::SizeofType:
    return {mkConstInt(intU64(), typeSize(E.SizeofTy, E.Loc), E.Loc),
            ctInt(intSizeT())};
  case CExprKind::Cond:
    return lowerConditional(E);
  }
  return errorRV(E.Loc, "unsupported expression");
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

void Lowerer::lowerStmt(const CStmt &S) {
  switch (S.K) {
  case CStmtKind::Compound: {
    Scopes.emplace_back();
    for (const CStmtPtr &Sub : S.Body)
      lowerStmt(*Sub);
    Scopes.pop_back();
    return;
  }
  case CStmtKind::Empty:
    return;
  case CStmtKind::Decl: {
    std::string Slot = declareLocal(S.DeclName, S.DeclTy, S.Loc);
    if (S.Init) {
      ExprPtr V = rvalAs(*S.Init, S.DeclTy);
      Stmt St;
      St.K = StmtKind::ExprS;
      St.Loc = S.Loc;
      St.E = mkStore(typeSize(S.DeclTy, S.Loc), mkAddrLocal(Slot, S.Loc),
                     std::move(V), MemOrder::NonAtomic, S.Loc);
      append(std::move(St));
    }
    return;
  }
  case CStmtKind::ExprSt: {
    RV V = rval(*S.E);
    Stmt St;
    St.K = StmtKind::ExprS;
    St.Loc = S.Loc;
    St.E = std::move(V.E);
    append(std::move(St));
    return;
  }
  case CStmtKind::Return: {
    if (S.E) {
      // Return type conversion.
      CTypePtr RetTy = FI->RetTy;
      ExprPtr V = rvalAs(*S.E, RetTy);
      terminateReturn(std::move(V), S.Loc);
    } else {
      terminateReturn(nullptr, S.Loc);
    }
    return;
  }
  case CStmtKind::If: {
    unsigned ThenB = newBlock(), ElseB = newBlock(), JoinB = newBlock();
    ExprPtr C = condition(*S.E);
    terminateCond(std::move(C), ThenB, ElseB, S.Loc);
    switchTo(ThenB);
    lowerStmt(*S.Then);
    terminateGoto(JoinB);
    switchTo(ElseB);
    if (S.Else)
      lowerStmt(*S.Else);
    terminateGoto(JoinB);
    switchTo(JoinB);
    return;
  }
  case CStmtKind::While: {
    unsigned HeadB = newBlock(), BodyB = newBlock(), ExitB = newBlock();
    if (!S.LoopAnnots.empty()) {
      F->Blocks[HeadB].AnnotId = static_cast<int>(FI->LoopAnnots.size());
      FI->LoopAnnots.push_back(S.LoopAnnots);
    }
    terminateGoto(HeadB);
    switchTo(HeadB);
    ExprPtr C = condition(*S.E);
    terminateCond(std::move(C), BodyB, ExitB, S.Loc);
    switchTo(BodyB);
    LoopStack.push_back({HeadB, ExitB});
    lowerStmt(*S.LoopBody);
    LoopStack.pop_back();
    terminateGoto(HeadB);
    switchTo(ExitB);
    return;
  }
  case CStmtKind::DoWhile: {
    unsigned BodyB = newBlock(), CondB = newBlock(), ExitB = newBlock();
    if (!S.LoopAnnots.empty()) {
      F->Blocks[BodyB].AnnotId = static_cast<int>(FI->LoopAnnots.size());
      FI->LoopAnnots.push_back(S.LoopAnnots);
    }
    terminateGoto(BodyB);
    switchTo(BodyB);
    LoopStack.push_back({CondB, ExitB});
    lowerStmt(*S.LoopBody);
    LoopStack.pop_back();
    terminateGoto(CondB);
    switchTo(CondB);
    ExprPtr C = condition(*S.E);
    terminateCond(std::move(C), BodyB, ExitB, S.Loc);
    switchTo(ExitB);
    return;
  }
  case CStmtKind::For: {
    Scopes.emplace_back();
    if (S.ForInit)
      lowerStmt(*S.ForInit);
    unsigned HeadB = newBlock(), BodyB = newBlock(), StepB = newBlock(),
             ExitB = newBlock();
    if (!S.LoopAnnots.empty()) {
      F->Blocks[HeadB].AnnotId = static_cast<int>(FI->LoopAnnots.size());
      FI->LoopAnnots.push_back(S.LoopAnnots);
    }
    terminateGoto(HeadB);
    switchTo(HeadB);
    if (S.E) {
      ExprPtr C = condition(*S.E);
      terminateCond(std::move(C), BodyB, ExitB, S.Loc);
    } else {
      terminateGoto(BodyB);
    }
    switchTo(BodyB);
    LoopStack.push_back({StepB, ExitB});
    lowerStmt(*S.LoopBody);
    LoopStack.pop_back();
    terminateGoto(StepB);
    switchTo(StepB);
    if (S.ForStep) {
      RV V = rval(*S.ForStep);
      Stmt St;
      St.K = StmtKind::ExprS;
      St.Loc = S.Loc;
      St.E = std::move(V.E);
      append(std::move(St));
    }
    terminateGoto(HeadB);
    switchTo(ExitB);
    Scopes.pop_back();
    return;
  }
  case CStmtKind::Break: {
    if (LoopStack.empty()) {
      Diags.error(S.Loc, "break outside of a loop");
      return;
    }
    terminateGoto(LoopStack.back().second);
    // Subsequent statements are dead; keep lowering into a fresh block.
    switchTo(newBlock());
    return;
  }
  case CStmtKind::Continue: {
    if (LoopStack.empty()) {
      Diags.error(S.Loc, "continue outside of a loop");
      return;
    }
    terminateGoto(LoopStack.back().first);
    switchTo(newBlock());
    return;
  }
  case CStmtKind::Goto: {
    terminateGoto(labelBlock(S.DeclName));
    switchTo(newBlock());
    return;
  }
  case CStmtKind::Label: {
    unsigned B = labelBlock(S.DeclName);
    terminateGoto(B);
    switchTo(B);
    return;
  }
  }
}

//===----------------------------------------------------------------------===//
// Top level
//===----------------------------------------------------------------------===//

void Lowerer::lowerFunction(const CFuncDecl &FD) {
  auto Fn = std::make_unique<Function>();
  Fn->Name = FD.Name;
  Fn->Loc = FD.Loc;
  F = Fn.get();
  FI = &AP->Fns[FD.Name];
  FI->Name = FD.Name;
  FI->RetTy = FD.RetTy;
  FI->Params = FD.Params;
  FI->Annots = FD.Annots;
  FI->Loc = FD.Loc;
  FI->HasBody = FD.Body != nullptr;
  FI->Range = {FD.Loc, FD.EndLoc};
  FI->NameRange = {FD.NameLoc, FD.NameEnd};
  Fn->RetSize = FD.RetTy->isVoid() ? 0 : typeSize(FD.RetTy, FD.Loc);

  Scopes.clear();
  Scopes.emplace_back();
  LoopStack.clear();
  Labels.clear();
  TempCounter = 0;
  NameCounts.clear();

  for (const CParam &P : FD.Params) {
    if (P.Name.empty()) {
      Diags.error(FD.Loc, "function definition parameter needs a name");
      continue;
    }
    Fn->Params.push_back({P.Name, typeSize(P.Ty, FD.Loc)});
    Scopes.back()[P.Name] = {P.Name, P.Ty};
    FI->LocalTypes[P.Name] = P.Ty;
    NameCounts[P.Name] = 1;
  }

  unsigned Entry = newBlock();
  (void)Entry;
  switchTo(0);
  if (FD.Body)
    lowerStmt(*FD.Body);
  if (!Terminated) {
    if (FD.RetTy->isVoid())
      terminateReturn(nullptr, FD.Loc);
    else {
      Stmt S;
      S.K = StmtKind::UBStmt;
      S.Msg = "control reaches end of non-void function '" + FD.Name + "'";
      S.Loc = FD.Loc;
      F->Blocks[CurBlock].Stmts.push_back(std::move(S));
      Terminated = true;
    }
  }
  AP->Prog.Functions[FD.Name] = std::move(Fn);
}

std::unique_ptr<AnnotatedProgram> Lowerer::run(CTranslationUnit &TU,
                                               std::string Source) {
  auto Result = std::make_unique<AnnotatedProgram>();
  AP = Result.get();
  AP->Source = std::move(Source);

  // Struct layouts first (in declaration order; nested structs must be
  // declared before use, as in C).
  for (CStructDecl &SD : TU.Structs) {
    StructInfo SI;
    SI.Name = SD.Name;
    SI.Annots = SD.Annots;
    SI.PtrTypedefName = SD.PtrTypedefName;
    SI.Loc = SD.Loc;
    SI.Layout.Name = SD.Name;
    for (CStructField &FD : SD.Fields) {
      SI.Fields.push_back(FD);
      // Layout computed below once all field layouts are known.
    }
    AP->Structs[SD.Name] = std::move(SI);
    StructInfo &Stored = AP->Structs[SD.Name];
    for (const CStructField &FD : Stored.Fields)
      Stored.Layout.Fields.push_back({FD.Name, typeLayout(FD.Ty, FD.Loc), 0});
    Stored.Layout.computeLayout();
  }
  for (CTypedef &TD : TU.Typedefs)
    AP->Typedefs.push_back(TD);

  // Globals.
  for (CGlobalDecl &GD : TU.Globals) {
    GlobalTypes[GD.Name] = GD.Ty;
    GlobalInfo GI;
    GI.Name = GD.Name;
    GI.Ty = GD.Ty;
    GI.Annots = GD.Annots;
    GI.Loc = GD.Loc;
    AP->Globals[GD.Name] = std::move(GI);
    GlobalDef G;
    G.Name = GD.Name;
    G.Size = typeSize(GD.Ty, GD.Loc);
    if (GD.Init) {
      if (GD.Ty->isInt()) {
        G.HasInit = true;
        G.Init = RtVal::fromInt(GD.Ty->Ity, *GD.Init);
      } else if (GD.Ty->isPointer() && *GD.Init == 0) {
        G.HasInit = true;
        G.Init = RtVal::null();
      } else {
        Diags.error(GD.Loc,
                    "global initializers must be integers or a null pointer");
      }
    }
    AP->Prog.Globals.push_back(std::move(G));
  }

  // Function signatures (so calls and function pointers resolve).
  for (const CFuncDecl &FD : TU.Functions) {
    std::vector<CTypePtr> Params;
    for (const CParam &P : FD.Params)
      Params.push_back(P.Ty);
    FuncTypes[FD.Name] = ctFunc(FD.RetTy, std::move(Params));
  }

  // Bodies.
  for (const CFuncDecl &FD : TU.Functions) {
    if (!FD.Body) {
      // Prototype: record metadata only.
      FnInfo &Info = AP->Fns[FD.Name];
      Info.Name = FD.Name;
      Info.RetTy = FD.RetTy;
      Info.Params = FD.Params;
      Info.Annots = FD.Annots;
      Info.Loc = FD.Loc;
      Info.HasBody = false;
      Info.Range = {FD.Loc, FD.EndLoc};
      Info.NameRange = {FD.NameLoc, FD.NameEnd};
      continue;
    }
    lowerFunction(FD);
  }

  return Result;
}

} // namespace

std::unique_ptr<AnnotatedProgram>
rcc::front::compileSource(const std::string &Source,
                          rcc::DiagnosticEngine &Diags) {
  trace::Span CompileSpan(trace::Category::Frontend, "frontend.compile");
  std::vector<Token> Toks;
  {
    trace::Span S(trace::Category::Frontend, "frontend.lex");
    Toks = lexSource(Source, Diags);
    trace::count("frontend.tokens", Toks.size());
  }
  if (Diags.hasErrors())
    return nullptr;
  Parser P(std::move(Toks), Diags);
  CTranslationUnit TU;
  {
    trace::Span S(trace::Category::Frontend, "frontend.parse");
    TU = P.parseTranslationUnit();
  }
  if (Diags.hasErrors())
    return nullptr;
  Lowerer L(Diags);
  std::unique_ptr<AnnotatedProgram> AP;
  {
    trace::Span S(trace::Category::Frontend, "frontend.lower");
    AP = L.run(TU, Source);
    if (AP)
      trace::count("frontend.functions", AP->Fns.size());
  }
  if (Diags.hasErrors())
    return nullptr;
  return AP;
}
