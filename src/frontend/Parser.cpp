//===- Parser.cpp ---------------------------------------------------------===//
//
// Part of RefinedC++, a C++ reproduction of the RefinedC verifier (PLDI'21).
//
//===----------------------------------------------------------------------===//

#include "frontend/Parser.h"

#include <cstring>

using namespace rcc::front;
using rcc::caesium::IntType;

//===----------------------------------------------------------------------===//
// CType helpers
//===----------------------------------------------------------------------===//

std::string CType::str() const {
  switch (K) {
  case CTypeKind::Void:
    return "void";
  case CTypeKind::Int:
    return Ity.str();
  case CTypeKind::Pointer:
    return Pointee->str() + "*";
  case CTypeKind::Struct:
    return "struct " + StructName;
  case CTypeKind::Array:
    return Pointee->str() + "[" + std::to_string(ArrayLen) + "]";
  case CTypeKind::Func: {
    std::string S = Ret->str() + "(";
    for (size_t I = 0; I < Params.size(); ++I) {
      if (I)
        S += ", ";
      S += Params[I]->str();
    }
    return S + ")";
  }
  }
  return "?";
}

CTypePtr rcc::front::ctVoid() {
  static CTypePtr T = std::make_shared<CType>();
  return T;
}
CTypePtr rcc::front::ctInt(IntType Ity) {
  auto T = std::make_shared<CType>();
  T->K = CTypeKind::Int;
  T->Ity = Ity;
  return T;
}
CTypePtr rcc::front::ctPtr(CTypePtr Pointee) {
  auto T = std::make_shared<CType>();
  T->K = CTypeKind::Pointer;
  T->Pointee = std::move(Pointee);
  return T;
}
CTypePtr rcc::front::ctStruct(const std::string &Name) {
  auto T = std::make_shared<CType>();
  T->K = CTypeKind::Struct;
  T->StructName = Name;
  return T;
}
CTypePtr rcc::front::ctArray(CTypePtr Elem, uint64_t Len) {
  auto T = std::make_shared<CType>();
  T->K = CTypeKind::Array;
  T->Pointee = std::move(Elem);
  T->ArrayLen = Len;
  return T;
}
CTypePtr rcc::front::ctFunc(CTypePtr Ret, std::vector<CTypePtr> Params) {
  auto T = std::make_shared<CType>();
  T->K = CTypeKind::Func;
  T->Ret = std::move(Ret);
  T->Params = std::move(Params);
  return T;
}

//===----------------------------------------------------------------------===//
// Token helpers
//===----------------------------------------------------------------------===//

const Token &Parser::peek(int Ahead) const {
  size_t I = Pos + Ahead;
  if (I >= Toks.size())
    I = Toks.size() - 1; // Eof
  return Toks[I];
}

Token Parser::advance() {
  Token T = cur();
  if (Pos + 1 < Toks.size())
    ++Pos;
  return T;
}

bool Parser::eatPunct(const char *P) {
  if (!atPunct(P))
    return false;
  advance();
  return true;
}

bool Parser::eatKeyword(const char *K) {
  if (!atKeyword(K))
    return false;
  advance();
  return true;
}

bool Parser::expectPunct(const char *P) {
  if (eatPunct(P))
    return true;
  error(std::string("expected '") + P + "' but found '" + cur().Text + "'");
  return false;
}

void Parser::error(const std::string &Msg) { Diags.error(cur().Loc, Msg); }

void Parser::skipTo(const char *P) {
  while (!cur().is(TokKind::Eof) && !atPunct(P))
    advance();
  eatPunct(P);
}

//===----------------------------------------------------------------------===//
// Annotations
//===----------------------------------------------------------------------===//

std::vector<RcAnnot> Parser::parseAnnotList() {
  std::vector<RcAnnot> Out;
  while (cur().is(TokKind::AttrOpen)) {
    advance();
    // rc :: kind ( "arg", ... )  -- possibly multiple attributes per [[ ]].
    while (!cur().is(TokKind::AttrClose) && !cur().is(TokKind::Eof)) {
      RcAnnot A;
      A.Loc = cur().Loc;
      if (!cur().isIdent() || cur().Text != "rc") {
        error("expected 'rc::' attribute");
        break;
      }
      advance();
      expectPunct(":");
      expectPunct(":");
      if (!cur().isIdent()) {
        error("expected annotation name after rc::");
        break;
      }
      A.Kind = advance().Text;
      if (eatPunct("(")) {
        while (!atPunct(")") && !cur().is(TokKind::Eof)) {
          if (cur().is(TokKind::String)) {
            // Adjacent string literals concatenate (used for multi-line
            // annotations, as in Figure 3's ptr_type).
            std::string S = advance().Text;
            while (cur().is(TokKind::String))
              S += advance().Text;
            A.Args.push_back(std::move(S));
          } else {
            error("annotation arguments must be string literals");
            advance();
          }
          if (!eatPunct(","))
            break;
        }
        expectPunct(")");
      }
      Out.push_back(std::move(A));
      if (!eatPunct(","))
        break;
    }
    if (!cur().is(TokKind::AttrClose)) {
      error("expected ']]'");
      while (!cur().is(TokKind::AttrClose) && !cur().is(TokKind::Eof))
        advance();
    }
    if (cur().is(TokKind::AttrClose))
      advance();
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Types
//===----------------------------------------------------------------------===//

bool Parser::atTypeStart() const {
  if (cur().is(TokKind::Keyword)) {
    static const std::set<std::string> TypeKW = {
        "void",   "char",    "short",   "int",      "long",    "unsigned",
        "signed", "struct",  "union",   "size_t",   "uint8_t", "uint16_t",
        "uint32_t", "uint64_t", "int8_t", "int16_t", "int32_t", "int64_t",
        "bool",   "_Bool",   "const",   "static",   "uintptr_t"};
    return TypeKW.count(cur().Text) != 0;
  }
  if (cur().isIdent())
    return Typedefs.count(cur().Text) != 0;
  return false;
}

CTypePtr Parser::parseTypeSpecifier(std::vector<RcAnnot> *StructAnnotsOut) {
  while (eatKeyword("const") || eatKeyword("static")) {
  }
  if (eatKeyword("void"))
    return ctVoid();
  if (eatKeyword("struct") || eatKeyword("union")) {
    std::vector<RcAnnot> Annots = parseAnnotList();
    if (StructAnnotsOut)
      *StructAnnotsOut = std::move(Annots);
    if (!cur().isIdent()) {
      error("expected struct name");
      return ctVoid();
    }
    std::string Name = advance().Text;
    StructNames.insert(Name);
    return ctStruct(Name);
  }

  // Fixed-width and standard integer types.
  struct Named {
    const char *KW;
    IntType Ity;
  };
  static const Named NamedInts[] = {
      {"size_t", rcc::caesium::intSizeT()}, {"uintptr_t", rcc::caesium::intU64()},
      {"uint8_t", rcc::caesium::intU8()},   {"uint16_t", rcc::caesium::intU16()},
      {"uint32_t", rcc::caesium::intU32()}, {"uint64_t", rcc::caesium::intU64()},
      {"int8_t", rcc::caesium::intI8()},    {"int16_t", rcc::caesium::intI16()},
      {"int32_t", rcc::caesium::intI32()},  {"int64_t", rcc::caesium::intI64()},
      {"bool", rcc::caesium::intU8()},      {"_Bool", rcc::caesium::intU8()},
  };
  for (const Named &N : NamedInts)
    if (eatKeyword(N.KW))
      return ctInt(N.Ity);

  // Combinations of signed/unsigned char/short/int/long.
  bool SawUnsigned = false, SawSigned = false;
  int Longs = 0;
  bool SawChar = false, SawShort = false, SawInt = false;
  bool Any = false;
  while (true) {
    if (eatKeyword("unsigned")) {
      SawUnsigned = true;
      Any = true;
      continue;
    }
    if (eatKeyword("signed")) {
      SawSigned = true;
      Any = true;
      continue;
    }
    if (eatKeyword("long")) {
      ++Longs;
      Any = true;
      continue;
    }
    if (eatKeyword("char")) {
      SawChar = true;
      Any = true;
      continue;
    }
    if (eatKeyword("short")) {
      SawShort = true;
      Any = true;
      continue;
    }
    if (eatKeyword("int")) {
      SawInt = true;
      Any = true;
      continue;
    }
    break;
  }
  (void)SawSigned;
  (void)SawInt;
  if (Any) {
    uint8_t Size = SawChar ? 1 : SawShort ? 2 : Longs >= 1 ? 8 : 4;
    return ctInt(IntType{Size, !SawUnsigned});
  }

  // Typedef name.
  if (cur().isIdent()) {
    auto It = Typedefs.find(cur().Text);
    if (It != Typedefs.end()) {
      advance();
      return It->second;
    }
  }
  error("expected a type, found '" + cur().Text + "'");
  advance();
  return ctVoid();
}

CTypePtr Parser::parseDeclarator(CTypePtr Base, std::string &Name,
                                 bool AllowAbstract) {
  while (eatPunct("*")) {
    Base = ctPtr(Base);
    while (eatKeyword("const")) {
    }
  }
  // Function-pointer declarator: ( * name ) ( params )
  if (atPunct("(") && peek(1).isPunct("*")) {
    advance(); // (
    advance(); // *
    if (cur().isIdent()) {
      LastNameLoc = cur().Loc;
      LastNameEnd = cur().End;
      Name = advance().Text;
    } else if (!AllowAbstract) {
      error("expected identifier in function-pointer declarator");
    }
    expectPunct(")");
    expectPunct("(");
    std::vector<CTypePtr> Params;
    if (!atPunct(")")) {
      do {
        CTypePtr PT = parseTypeSpecifier();
        std::string Ignored;
        PT = parseDeclarator(PT, Ignored, /*AllowAbstract=*/true);
        Params.push_back(PT);
      } while (eatPunct(","));
    }
    expectPunct(")");
    return ctPtr(ctFunc(Base, std::move(Params)));
  }
  if (cur().isIdent()) {
    LastNameLoc = cur().Loc;
    LastNameEnd = cur().End;
    Name = advance().Text;
  } else if (!AllowAbstract && !atPunct("[")) {
    // Nameless declarator only allowed in abstract positions.
  }
  while (eatPunct("[")) {
    uint64_t Len = 0;
    if (cur().is(TokKind::Number))
      Len = advance().IntVal;
    else
      error("array length must be an integer literal");
    expectPunct("]");
    Base = ctArray(Base, Len);
  }
  return Base;
}

CTypePtr Parser::parseFullType() {
  CTypePtr T = parseTypeSpecifier();
  std::string Ignored;
  return parseDeclarator(T, Ignored, /*AllowAbstract=*/true);
}

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

void Parser::parseStructBody(CStructDecl &SD) {
  expectPunct("{");
  while (!atPunct("}") && !cur().is(TokKind::Eof)) {
    CStructField F;
    F.Loc = cur().Loc;
    F.Annots = parseAnnotList();
    CTypePtr Base = parseTypeSpecifier();
    F.Ty = parseDeclarator(Base, F.Name);
    if (F.Name.empty())
      error("expected field name");
    expectPunct(";");
    SD.Fields.push_back(std::move(F));
  }
  expectPunct("}");
}

std::vector<CParam> Parser::parseParamList() {
  std::vector<CParam> Params;
  expectPunct("(");
  if (atKeyword("void") && peek(1).isPunct(")")) {
    advance();
    expectPunct(")");
    return Params;
  }
  if (!atPunct(")")) {
    do {
      CParam P;
      CTypePtr Base = parseTypeSpecifier();
      P.Ty = parseDeclarator(Base, P.Name, /*AllowAbstract=*/true);
      Params.push_back(std::move(P));
    } while (eatPunct(","));
  }
  expectPunct(")");
  return Params;
}

void Parser::parseTopLevel(CTranslationUnit &TU, std::vector<RcAnnot> Annots) {
  rcc::SourceLoc Loc = cur().Loc;

  // typedef ...
  if (eatKeyword("typedef")) {
    if (atKeyword("struct") || atKeyword("union")) {
      advance();
      // typedef struct [[annots]] name { ... } [*]alias ;
      std::vector<RcAnnot> StructAnnots = parseAnnotList();
      for (RcAnnot &A : StructAnnots)
        Annots.push_back(std::move(A));
      std::string StructName;
      if (cur().isIdent())
        StructName = advance().Text;
      CStructDecl SD;
      SD.Loc = Loc;
      SD.Name = StructName;
      SD.Annots = std::move(Annots);
      if (atPunct("{")) {
        StructNames.insert(StructName);
        parseStructBody(SD);
      }
      bool IsPtr = eatPunct("*");
      std::string Alias;
      if (cur().isIdent())
        Alias = advance().Text;
      expectPunct(";");
      if (!Alias.empty()) {
        CTypePtr T = ctStruct(StructName);
        if (IsPtr) {
          T = ctPtr(T);
          SD.PtrTypedefName = Alias;
        }
        Typedefs[Alias] = T;
        CTypedef TD;
        TD.Name = Alias;
        TD.Ty = T;
        TD.Loc = Loc;
        TU.Typedefs.push_back(std::move(TD));
      }
      if (!SD.Fields.empty() || !SD.Name.empty())
        TU.Structs.push_back(std::move(SD));
      return;
    }
    // typedef of a base/function type: `typedef int cmp_t(void*, void*);`
    // Annotations may follow the typedef keyword (function-type specs).
    for (RcAnnot &A : parseAnnotList())
      Annots.push_back(std::move(A));
    CTypePtr Base = parseTypeSpecifier();
    std::string Name;
    CTypePtr T = parseDeclarator(Base, Name);
    if (atPunct("(")) {
      std::vector<CParam> Params = parseParamList();
      std::vector<CTypePtr> PTs;
      for (CParam &P : Params)
        PTs.push_back(P.Ty);
      T = ctFunc(T, std::move(PTs));
    }
    expectPunct(";");
    if (Name.empty()) {
      error("expected typedef name");
      return;
    }
    Typedefs[Name] = T;
    CTypedef TD;
    TD.Name = Name;
    TD.Ty = T;
    TD.Annots = std::move(Annots);
    TD.Loc = Loc;
    TU.Typedefs.push_back(std::move(TD));
    return;
  }

  // struct definition (not typedef).
  if (atKeyword("struct") &&
      (peek(1).is(TokKind::AttrOpen) ||
       (peek(1).isIdent() && peek(2).isPunct("{")))) {
    advance(); // struct
    std::vector<RcAnnot> StructAnnots = parseAnnotList();
    for (RcAnnot &A : StructAnnots)
      Annots.push_back(std::move(A));
    CStructDecl SD;
    SD.Loc = Loc;
    SD.Annots = std::move(Annots);
    if (cur().isIdent())
      SD.Name = advance().Text;
    StructNames.insert(SD.Name);
    parseStructBody(SD);
    expectPunct(";");
    TU.Structs.push_back(std::move(SD));
    return;
  }

  // Function or global variable.
  CTypePtr Base = parseTypeSpecifier();
  std::string Name;
  CTypePtr T = parseDeclarator(Base, Name);
  // Snapshot the name range now: parseParamList runs parseDeclarator on
  // every parameter and would overwrite it.
  rcc::SourceLoc NameLoc = LastNameLoc;
  rcc::SourceLoc NameEnd = LastNameEnd;
  if (Name.empty()) {
    error("expected declaration name");
    skipTo(";");
    return;
  }

  if (atPunct("(")) {
    CFuncDecl FD;
    FD.Loc = Loc;
    FD.Name = Name;
    FD.NameLoc = NameLoc;
    FD.NameEnd = NameEnd;
    FD.RetTy = T;
    FD.Params = parseParamList();
    FD.Annots = std::move(Annots);
    if (atPunct("{"))
      FD.Body = parseCompound();
    else
      expectPunct(";");
    FD.EndLoc = Pos > 0 ? Toks[Pos - 1].End : cur().Loc;
    TU.Functions.push_back(std::move(FD));
    return;
  }

  CGlobalDecl GD;
  GD.Loc = Loc;
  GD.Name = Name;
  GD.Ty = T;
  GD.Annots = std::move(Annots);
  if (eatPunct("=")) {
    bool Neg = eatPunct("-");
    if (cur().is(TokKind::Number)) {
      int64_t V = static_cast<int64_t>(advance().IntVal);
      GD.Init = Neg ? -V : V;
    } else {
      error("global initializers must be integer literals");
      skipTo(";");
      TU.Globals.push_back(std::move(GD));
      return;
    }
  }
  expectPunct(";");
  TU.Globals.push_back(std::move(GD));
}

CTranslationUnit Parser::parseTranslationUnit() {
  CTranslationUnit TU;
  Unit = &TU;
  while (!cur().is(TokKind::Eof)) {
    std::vector<RcAnnot> Annots = parseAnnotList();
    if (cur().is(TokKind::Eof))
      break;
    size_t Before = Pos;
    parseTopLevel(TU, std::move(Annots));
    if (Pos == Before) {
      // Ensure forward progress on malformed input.
      advance();
    }
  }
  return TU;
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

CStmtPtr Parser::parseCompound() {
  auto S = std::make_unique<CStmt>(CStmtKind::Compound);
  S->Loc = cur().Loc;
  expectPunct("{");
  while (!atPunct("}") && !cur().is(TokKind::Eof)) {
    std::vector<RcAnnot> Annots = parseAnnotList();
    size_t Before = Pos;
    CStmtPtr Sub = parseStmt();
    if (Sub) {
      if (!Annots.empty()) {
        if (Sub->K == CStmtKind::While || Sub->K == CStmtKind::For ||
            Sub->K == CStmtKind::DoWhile)
          Sub->LoopAnnots = std::move(Annots);
        else
          Diags.warning(Sub->Loc,
                        "annotations are only meaningful before loops here");
      }
      S->Body.push_back(std::move(Sub));
    }
    if (Pos == Before)
      advance();
  }
  expectPunct("}");
  return S;
}

CStmtPtr Parser::parseDeclStmt() {
  auto S = std::make_unique<CStmt>(CStmtKind::Decl);
  S->Loc = cur().Loc;
  CTypePtr Base = parseTypeSpecifier();
  S->DeclTy = parseDeclarator(Base, S->DeclName);
  if (S->DeclName.empty())
    error("expected variable name");
  if (eatPunct("="))
    S->Init = parseAssign();
  expectPunct(";");
  return S;
}

CStmtPtr Parser::parseStmt() {
  rcc::SourceLoc Loc = cur().Loc;

  if (atPunct("{"))
    return parseCompound();
  if (eatPunct(";")) {
    auto S = std::make_unique<CStmt>(CStmtKind::Empty);
    S->Loc = Loc;
    return S;
  }
  if (eatKeyword("return")) {
    auto S = std::make_unique<CStmt>(CStmtKind::Return);
    S->Loc = Loc;
    if (!atPunct(";"))
      S->E = parseExpr();
    expectPunct(";");
    return S;
  }
  if (eatKeyword("if")) {
    auto S = std::make_unique<CStmt>(CStmtKind::If);
    S->Loc = Loc;
    expectPunct("(");
    S->E = parseExpr();
    expectPunct(")");
    S->Then = parseStmt();
    if (eatKeyword("else"))
      S->Else = parseStmt();
    return S;
  }
  if (eatKeyword("while")) {
    auto S = std::make_unique<CStmt>(CStmtKind::While);
    S->Loc = Loc;
    expectPunct("(");
    S->E = parseExpr();
    expectPunct(")");
    S->LoopBody = parseStmt();
    return S;
  }
  if (eatKeyword("do")) {
    auto S = std::make_unique<CStmt>(CStmtKind::DoWhile);
    S->Loc = Loc;
    S->LoopBody = parseStmt();
    if (!eatKeyword("while"))
      error("expected 'while' after do-body");
    expectPunct("(");
    S->E = parseExpr();
    expectPunct(")");
    expectPunct(";");
    return S;
  }
  if (eatKeyword("for")) {
    auto S = std::make_unique<CStmt>(CStmtKind::For);
    S->Loc = Loc;
    expectPunct("(");
    if (!eatPunct(";")) {
      if (atTypeStart())
        S->ForInit = parseDeclStmt();
      else {
        auto E = std::make_unique<CStmt>(CStmtKind::ExprSt);
        E->Loc = cur().Loc;
        E->E = parseExpr();
        expectPunct(";");
        S->ForInit = std::move(E);
      }
    }
    if (!atPunct(";"))
      S->E = parseExpr();
    expectPunct(";");
    if (!atPunct(")"))
      S->ForStep = parseExpr();
    expectPunct(")");
    S->LoopBody = parseStmt();
    return S;
  }
  if (eatKeyword("break")) {
    auto S = std::make_unique<CStmt>(CStmtKind::Break);
    S->Loc = Loc;
    expectPunct(";");
    return S;
  }
  if (eatKeyword("continue")) {
    auto S = std::make_unique<CStmt>(CStmtKind::Continue);
    S->Loc = Loc;
    expectPunct(";");
    return S;
  }
  if (eatKeyword("goto")) {
    auto S = std::make_unique<CStmt>(CStmtKind::Goto);
    S->Loc = Loc;
    if (cur().isIdent())
      S->DeclName = advance().Text;
    else
      error("expected label after goto");
    expectPunct(";");
    return S;
  }
  // Label: ident ':'
  if (cur().isIdent() && peek(1).isPunct(":") && !peek(2).isPunct(":")) {
    auto S = std::make_unique<CStmt>(CStmtKind::Label);
    S->Loc = Loc;
    S->DeclName = advance().Text;
    advance(); // :
    return S;
  }
  if (atTypeStart())
    return parseDeclStmt();

  auto S = std::make_unique<CStmt>(CStmtKind::ExprSt);
  S->Loc = Loc;
  S->E = parseExpr();
  expectPunct(";");
  return S;
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

CExprPtr Parser::parseExpr() { return parseAssign(); }

CExprPtr Parser::parseAssign() {
  CExprPtr L = parseCond();
  static const char *CompoundOps[] = {"+=", "-=", "*=", "/=", "%=",
                                      "&=", "|=", "^=", "<<=", ">>="};
  if (atPunct("=")) {
    rcc::SourceLoc Loc = advance().Loc;
    auto E = std::make_unique<CExpr>(CExprKind::Assign);
    E->Loc = Loc;
    E->Kids.push_back(std::move(L));
    E->Kids.push_back(parseAssign());
    return E;
  }
  for (const char *Op : CompoundOps) {
    if (atPunct(Op)) {
      rcc::SourceLoc Loc = advance().Loc;
      auto E = std::make_unique<CExpr>(CExprKind::CompoundAssign);
      E->Loc = Loc;
      E->OpText = std::string(Op).substr(0, std::strlen(Op) - 1);
      E->Kids.push_back(std::move(L));
      E->Kids.push_back(parseAssign());
      return E;
    }
  }
  return L;
}

CExprPtr Parser::parseCond() {
  CExprPtr C = parseBinary(0);
  if (!atPunct("?"))
    return C;
  rcc::SourceLoc Loc = advance().Loc;
  auto E = std::make_unique<CExpr>(CExprKind::Cond);
  E->Loc = Loc;
  E->Kids.push_back(std::move(C));
  E->Kids.push_back(parseExpr());
  expectPunct(":");
  E->Kids.push_back(parseCond());
  return E;
}

namespace {
int binPrec(const std::string &Op) {
  if (Op == "||")
    return 1;
  if (Op == "&&")
    return 2;
  if (Op == "|")
    return 3;
  if (Op == "^")
    return 4;
  if (Op == "&")
    return 5;
  if (Op == "==" || Op == "!=")
    return 6;
  if (Op == "<" || Op == ">" || Op == "<=" || Op == ">=")
    return 7;
  if (Op == "<<" || Op == ">>")
    return 8;
  if (Op == "+" || Op == "-")
    return 9;
  if (Op == "*" || Op == "/" || Op == "%")
    return 10;
  return -1;
}
} // namespace

CExprPtr Parser::parseBinary(int MinPrec) {
  CExprPtr L = parseUnary();
  while (cur().is(TokKind::Punct)) {
    int Prec = binPrec(cur().Text);
    if (Prec < 0 || Prec < MinPrec)
      break;
    std::string Op = advance().Text;
    CExprPtr R = parseBinary(Prec + 1);
    auto E = std::make_unique<CExpr>(CExprKind::Binary);
    E->Loc = L->Loc;
    E->OpText = Op;
    E->Kids.push_back(std::move(L));
    E->Kids.push_back(std::move(R));
    L = std::move(E);
  }
  return L;
}

CExprPtr Parser::parseUnary() {
  rcc::SourceLoc Loc = cur().Loc;
  if (eatPunct("*")) {
    auto E = std::make_unique<CExpr>(CExprKind::Deref);
    E->Loc = Loc;
    E->Kids.push_back(parseUnary());
    return E;
  }
  if (eatPunct("&")) {
    auto E = std::make_unique<CExpr>(CExprKind::AddrOf);
    E->Loc = Loc;
    E->Kids.push_back(parseUnary());
    return E;
  }
  if (atPunct("-") || atPunct("!") || atPunct("~")) {
    auto E = std::make_unique<CExpr>(CExprKind::Unary);
    E->Loc = Loc;
    E->OpText = advance().Text;
    E->Kids.push_back(parseUnary());
    return E;
  }
  if (atPunct("++") || atPunct("--")) {
    auto E = std::make_unique<CExpr>(CExprKind::IncDec);
    E->Loc = Loc;
    E->IsDecrement = advance().Text == "--";
    E->IsPost = false;
    E->Kids.push_back(parseUnary());
    return E;
  }
  if (eatKeyword("sizeof")) {
    auto E = std::make_unique<CExpr>(CExprKind::SizeofType);
    E->Loc = Loc;
    expectPunct("(");
    E->SizeofTy = parseFullType();
    expectPunct(")");
    return E;
  }
  // Cast: '(' type ')' unary
  if (atPunct("(")) {
    size_t Save = Pos;
    advance();
    if (atTypeStart()) {
      CTypePtr T = parseFullType();
      if (eatPunct(")")) {
        auto E = std::make_unique<CExpr>(CExprKind::Cast);
        E->Loc = Loc;
        E->CastTo = T;
        E->Kids.push_back(parseUnary());
        return E;
      }
    }
    Pos = Save;
  }
  return parsePostfix();
}

CExprPtr Parser::parsePostfix() {
  CExprPtr E = parsePrimary();
  while (true) {
    rcc::SourceLoc Loc = cur().Loc;
    if (eatPunct("(")) {
      auto C = std::make_unique<CExpr>(CExprKind::Call);
      C->Loc = Loc;
      C->Kids.push_back(std::move(E));
      if (!atPunct(")")) {
        do {
          C->Kids.push_back(parseAssign());
        } while (eatPunct(","));
      }
      expectPunct(")");
      E = std::move(C);
      continue;
    }
    if (eatPunct("[")) {
      auto C = std::make_unique<CExpr>(CExprKind::Index);
      C->Loc = Loc;
      C->Kids.push_back(std::move(E));
      C->Kids.push_back(parseExpr());
      expectPunct("]");
      E = std::move(C);
      continue;
    }
    if (atPunct(".") || atPunct("->")) {
      bool Arrow = advance().Text == "->";
      auto C = std::make_unique<CExpr>(CExprKind::Member);
      C->Loc = Loc;
      C->IsArrow = Arrow;
      if (cur().isIdent())
        C->Name = advance().Text;
      else
        error("expected field name");
      C->Kids.push_back(std::move(E));
      E = std::move(C);
      continue;
    }
    if (atPunct("++") || atPunct("--")) {
      auto C = std::make_unique<CExpr>(CExprKind::IncDec);
      C->Loc = Loc;
      C->IsDecrement = advance().Text == "--";
      C->IsPost = true;
      C->Kids.push_back(std::move(E));
      E = std::move(C);
      continue;
    }
    break;
  }
  return E;
}

CExprPtr Parser::parsePrimary() {
  rcc::SourceLoc Loc = cur().Loc;
  if (cur().is(TokKind::Number)) {
    auto E = std::make_unique<CExpr>(CExprKind::IntLit);
    E->Loc = Loc;
    E->IntVal = advance().IntVal;
    return E;
  }
  if (eatKeyword("NULL")) {
    auto E = std::make_unique<CExpr>(CExprKind::Null);
    E->Loc = Loc;
    return E;
  }
  if (eatKeyword("true")) {
    auto E = std::make_unique<CExpr>(CExprKind::IntLit);
    E->Loc = Loc;
    E->IntVal = 1;
    return E;
  }
  if (eatKeyword("false")) {
    auto E = std::make_unique<CExpr>(CExprKind::IntLit);
    E->Loc = Loc;
    E->IntVal = 0;
    return E;
  }
  if (cur().isIdent()) {
    auto E = std::make_unique<CExpr>(CExprKind::Ident);
    E->Loc = Loc;
    E->Name = advance().Text;
    return E;
  }
  if (eatPunct("(")) {
    CExprPtr E = parseExpr();
    expectPunct(")");
    return E;
  }
  error("expected expression, found '" + cur().Text + "'");
  advance();
  auto E = std::make_unique<CExpr>(CExprKind::IntLit);
  E->Loc = Loc;
  return E;
}
