//===- CAst.h - AST for the annotated C subset ------------------*- C++ -*-===//
//
// Part of RefinedC++, a C++ reproduction of the RefinedC verifier (PLDI'21).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The C-level AST produced by the parser (the analogue of Cerberus's AIL
/// intermediate language, Section 3). Declarations, statements and
/// expressions carry raw `[[rc::...]]` annotations, which the RefinedC layer
/// parses into specification types later; the front end itself only lowers C
/// to Caesium and never interprets specifications.
///
//===----------------------------------------------------------------------===//

#ifndef RCC_FRONTEND_CAST_H
#define RCC_FRONTEND_CAST_H

#include "caesium/Layout.h"
#include "support/SourceLoc.h"

#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace rcc::front {

//===----------------------------------------------------------------------===//
// C types
//===----------------------------------------------------------------------===//

enum class CTypeKind : uint8_t { Void, Int, Pointer, Struct, Func, Array };

struct CType;
using CTypePtr = std::shared_ptr<const CType>;

struct CType {
  CTypeKind K = CTypeKind::Void;
  caesium::IntType Ity;       ///< Int
  CTypePtr Pointee;           ///< Pointer / Array element
  std::string StructName;     ///< Struct
  uint64_t ArrayLen = 0;      ///< Array
  CTypePtr Ret;               ///< Func
  std::vector<CTypePtr> Params;

  bool isVoid() const { return K == CTypeKind::Void; }
  bool isInt() const { return K == CTypeKind::Int; }
  bool isPointer() const { return K == CTypeKind::Pointer; }
  bool isStruct() const { return K == CTypeKind::Struct; }
  bool isFunc() const { return K == CTypeKind::Func; }
  bool isArray() const { return K == CTypeKind::Array; }

  std::string str() const;
};

CTypePtr ctVoid();
CTypePtr ctInt(caesium::IntType Ity);
CTypePtr ctPtr(CTypePtr Pointee);
CTypePtr ctStruct(const std::string &Name);
CTypePtr ctArray(CTypePtr Elem, uint64_t Len);
CTypePtr ctFunc(CTypePtr Ret, std::vector<CTypePtr> Params);

//===----------------------------------------------------------------------===//
// Annotations
//===----------------------------------------------------------------------===//

/// One `[[rc::kind("arg1", "arg2", ...)]]` annotation, uninterpreted.
struct RcAnnot {
  std::string Kind;
  std::vector<std::string> Args;
  rcc::SourceLoc Loc;
};

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

enum class CExprKind : uint8_t {
  IntLit,
  Null,     ///< NULL or (void*)0
  Ident,
  Unary,    ///< OpText in {"-", "!", "~"}
  Binary,   ///< arithmetic, comparison, logical (&&/|| kept structured)
  Assign,   ///< =
  CompoundAssign, ///< +=, -=, ...; OpText holds the base operator
  IncDec,   ///< ++/--; IsPost distinguishes
  Call,
  Member,   ///< .f or ->f (IsArrow)
  Index,    ///< a[i]
  Deref,    ///< *p
  AddrOf,   ///< &lv
  Cast,
  SizeofType,
  Cond,     ///< ?: (Kids: cond, then, else)
};

struct CExpr;
using CExprPtr = std::unique_ptr<CExpr>;

struct CExpr {
  CExprKind K;
  rcc::SourceLoc Loc;

  uint64_t IntVal = 0;      ///< IntLit
  std::string Name;         ///< Ident / Member field
  std::string OpText;       ///< Unary/Binary/CompoundAssign operator
  bool IsArrow = false;     ///< Member
  bool IsPost = false;      ///< IncDec
  bool IsDecrement = false; ///< IncDec
  CTypePtr CastTo;          ///< Cast
  CTypePtr SizeofTy;        ///< SizeofType
  std::vector<CExprPtr> Kids;

  // Filled in by Sema.
  CTypePtr Ty;
  bool IsLValue = false;

  explicit CExpr(CExprKind K) : K(K) {}
};

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

enum class CStmtKind : uint8_t {
  Compound,
  Decl,
  ExprSt,
  If,
  While,
  For,
  DoWhile,
  Return,
  Break,
  Continue,
  Goto,
  Label,
  Empty,
};

struct CStmt;
using CStmtPtr = std::unique_ptr<CStmt>;

struct CStmt {
  CStmtKind K;
  rcc::SourceLoc Loc;

  std::vector<CStmtPtr> Body; ///< Compound
  CTypePtr DeclTy;            ///< Decl
  std::string DeclName;       ///< Decl / Goto / Label target name
  CExprPtr Init;              ///< Decl initializer (may be null)
  CExprPtr E;                 ///< ExprSt / If cond / While cond / Return value
  CStmtPtr Then;              ///< If
  CStmtPtr Else;              ///< If (may be null)
  CStmtPtr LoopBody;          ///< While / For / DoWhile
  CStmtPtr ForInit;           ///< For (decl or expr stmt; may be null)
  CExprPtr ForStep;           ///< For (may be null)
  std::vector<RcAnnot> LoopAnnots; ///< attached to While / For / DoWhile

  explicit CStmt(CStmtKind K) : K(K) {}
};

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

struct CStructField {
  std::string Name;
  CTypePtr Ty;
  std::vector<RcAnnot> Annots;
  rcc::SourceLoc Loc;
};

struct CStructDecl {
  std::string Name;
  std::vector<CStructField> Fields;
  std::vector<RcAnnot> Annots;
  /// When declared `typedef struct ... {...} *Name;` — the pointer typedef
  /// that rc::ptr_type refines (Figure 3's chunks_t).
  std::string PtrTypedefName;
  rcc::SourceLoc Loc;
};

struct CParam {
  std::string Name;
  CTypePtr Ty;
};

struct CFuncDecl {
  std::string Name;
  CTypePtr RetTy;
  std::vector<CParam> Params;
  CStmtPtr Body; ///< null for prototypes
  std::vector<RcAnnot> Annots;
  rcc::SourceLoc Loc;
  rcc::SourceLoc NameLoc; ///< where the function name token starts
  rcc::SourceLoc NameEnd; ///< one past the function name token
  rcc::SourceLoc EndLoc;  ///< one past the closing `}` (or the `;`)
};

struct CGlobalDecl {
  std::string Name;
  CTypePtr Ty;
  std::optional<int64_t> Init;
  std::vector<RcAnnot> Annots;
  rcc::SourceLoc Loc;
};

struct CTypedef {
  std::string Name;
  CTypePtr Ty;
  std::vector<RcAnnot> Annots;
  rcc::SourceLoc Loc;
};

struct CTranslationUnit {
  std::vector<CStructDecl> Structs;
  std::vector<CTypedef> Typedefs;
  std::vector<CGlobalDecl> Globals;
  std::vector<CFuncDecl> Functions;
};

} // namespace rcc::front

#endif // RCC_FRONTEND_CAST_H
