//===- Evaluate.cpp -------------------------------------------------------===//
//
// Part of RefinedC++, a C++ reproduction of the RefinedC verifier (PLDI'21).
//
//===----------------------------------------------------------------------===//

#include "casestudies/Evaluate.h"

#include "caesium/Interp.h"
#include "frontend/Frontend.h"
#include "refinedc/Checker.h"
#include "support/ThreadPool.h"
#include "support/Util.h"

#include <sstream>

using namespace rcc;
using namespace rcc::casestudies;
using namespace rcc::refinedc;

Fig7Row rcc::casestudies::evaluateCaseStudy(const CaseStudy &CS,
                                            const EvalOptions &Opts) {
  // Null-safe: when Opts.Trace is unset, an ambient session installed by a
  // caller (e.g. evaluateAll's pool propagating its own) stays in effect.
  trace::SessionScope TraceScope(Opts.Trace);
  Fig7Row Row;
  Row.Name = CS.Name;
  Row.Class = CS.Class;
  Row.TypesUsed = CS.TypesUsed;

  DiagnosticEngine Diags;
  auto AP = front::compileSource(CS.Source, Diags);
  if (!AP) {
    Row.Error = "front end: " + Diags.render(CS.Source);
    return Row;
  }
  Checker C(*AP, Diags);
  if (!C.buildEnv()) {
    Row.Error = "spec: " + Diags.render(CS.Source);
    return Row;
  }

  VerifyOptions VO;
  VO.Backtracking = Opts.Backtracking;
  VO.Recheck = Opts.RunProofCheck && !Opts.Backtracking;
  VO.Jobs = Opts.Jobs;
  VO.Portfolio = Opts.Portfolio;
  ProgramResult PR = C.verifyFunctions(CS.Functions, VO);

  std::set<std::string> Rules;
  for (const FnResult &R : PR.Fns) {
    if (!R.Verified && Row.Error.empty())
      Row.Error = R.renderError(CS.Source);
    Row.RuleApps += R.Stats.RuleApps;
    for (const std::string &N : R.Stats.RulesUsed)
      Rules.insert(N);
    Row.SideCondAuto += R.Stats.SideCondAuto;
    Row.SideCondManual += R.Stats.SideCondManual;
    Row.EvarsInstantiated += R.EvarsInstantiated;
    Row.BacktrackedSteps += R.BacktrackedSteps;
  }
  Row.VerifyMillis = PR.WallMillis;
  Row.Verified = PR.allVerified();
  Row.ProofCheckOk = Row.Verified && PR.allRechecksOk();
  Row.DistinctRules = static_cast<unsigned>(Rules.size());

  SourceLineStats LS = countSourceLines(CS.Source);
  Row.ImplLines = LS.Impl;
  Row.SpecLines = LS.FnSpec;
  Row.AnnotStructInv = LS.StructInv;
  Row.AnnotLoop = LS.Loop;
  Row.AnnotOther = LS.OtherAnnot;
  Row.AnnotLines = LS.annot();
  Row.PureLines = C.pureLines();
  if (Row.ImplLines > 0)
    Row.Overhead =
        static_cast<double>(Row.AnnotLines + Row.PureLines) / Row.ImplLines;
  return Row;
}

std::vector<Fig7Row> rcc::casestudies::evaluateAll(const EvalOptions &Opts) {
  trace::SessionScope TraceScope(Opts.Trace);
  const std::vector<CaseStudy> &All = allCaseStudies();
  std::vector<Fig7Row> Rows(All.size());
  // Parallelism across whole case studies (each has its own Checker
  // session); inner verification stays serial to avoid oversubscribing.
  EvalOptions Inner = Opts;
  Inner.Jobs = 1;
  ThreadPool Pool(ThreadPool::resolveJobs(Opts.Jobs));
  Pool.parallelFor(All.size(),
                   [&](size_t I) { Rows[I] = evaluateCaseStudy(All[I], Inner); });
  return Rows;
}

std::string
rcc::casestudies::renderFig7Table(const std::vector<Fig7Row> &Rows) {
  std::ostringstream OS;
  char Buf[256];
  snprintf(Buf, sizeof(Buf),
           "%-5s %-28s %-22s %-10s %4s %8s %5s %5s %5s %5s %5s %6s\n",
           "Class", "Test", "Types used", "Rules", "∃", "[phi]", "Impl",
           "Spec", "Annot", "Pure", "Ovh", "ms");
  OS << Buf;
  OS << std::string(120, '-') << "\n";
  for (const Fig7Row &R : Rows) {
    char Rules[32], Phi[32], Annot[32], Ovh[16];
    snprintf(Rules, sizeof(Rules), "%u/%u", R.DistinctRules, R.RuleApps);
    snprintf(Phi, sizeof(Phi), "%u/%u", R.SideCondAuto, R.SideCondManual);
    snprintf(Annot, sizeof(Annot), "%u(%u/%u/%u)", R.AnnotLines,
             R.AnnotStructInv, R.AnnotLoop, R.AnnotOther);
    snprintf(Ovh, sizeof(Ovh), "~%.1f", R.Overhead);
    snprintf(Buf, sizeof(Buf),
             "%-5s %-28s %-22s %-10s %4u %8s %5u %5u %12s %5u %5s %6.1f %s\n",
             R.Class.c_str(), R.Name.c_str(), R.TypesUsed.c_str(), Rules,
             R.EvarsInstantiated, Phi, R.ImplLines, R.SpecLines, Annot,
             R.PureLines, Ovh, R.VerifyMillis,
             R.Verified ? (R.ProofCheckOk ? "[ok]" : "[ok, recheck FAILED]")
                        : "[FAILED]");
    OS << Buf;
  }
  return OS.str();
}

std::string
rcc::casestudies::runSemantics(const CaseStudy &CS,
                               const std::vector<uint64_t> &Seeds) {
  DiagnosticEngine Diags;
  auto AP = front::compileSource(CS.Source, Diags);
  if (!AP)
    return "front end failed";
  if (CS.Driver.empty())
    return "";
  for (uint64_t Seed : Seeds) {
    caesium::Machine M(AP->Prog, Seed);
    caesium::ExecResult R = M.run(CS.Driver, {});
    if (!R.ok())
      return "seed " + std::to_string(Seed) + ": " + R.Message;
  }
  return "";
}
