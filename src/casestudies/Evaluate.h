//===- Evaluate.h - Figure 7 row computation --------------------*- C++ -*-===//
//
// Part of RefinedC++, a C++ reproduction of the RefinedC verifier (PLDI'21).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs the verifier over a case study and aggregates the measurements the
/// paper reports in Figure 7: distinct typing rules and rule applications,
/// automatically instantiated existentials, side conditions proved
/// automatically vs. manually (extra solvers / lemmas), implementation,
/// specification and annotation line counts, modeled pure-proof lines, and
/// the annotation-overhead ratio.
///
//===----------------------------------------------------------------------===//

#ifndef RCC_CASESTUDIES_EVALUATE_H
#define RCC_CASESTUDIES_EVALUATE_H

#include "casestudies/CaseStudies.h"
#include "pure/Portfolio.h"
#include "trace/Trace.h"

#include <set>
#include <string>
#include <vector>

namespace rcc::casestudies {

/// One Figure 7 row, measured.
struct Fig7Row {
  std::string Name;
  std::string Class;
  std::string TypesUsed;
  bool Verified = false;
  std::string Error;

  unsigned DistinctRules = 0;
  unsigned RuleApps = 0;
  unsigned EvarsInstantiated = 0;
  unsigned SideCondAuto = 0;
  unsigned SideCondManual = 0;
  unsigned ImplLines = 0;
  unsigned SpecLines = 0;
  unsigned AnnotLines = 0;
  unsigned AnnotStructInv = 0;
  unsigned AnnotLoop = 0;
  unsigned AnnotOther = 0;
  unsigned PureLines = 0;
  double Overhead = 0.0;

  unsigned BacktrackedSteps = 0; ///< ablation runs only
  double VerifyMillis = 0.0;
  bool ProofCheckOk = false;
};

struct EvalOptions {
  bool Backtracking = false; ///< ablation baseline
  bool RunProofCheck = true;
  /// Concurrent verification jobs (VerifyOptions::Jobs). evaluateAll
  /// additionally spreads whole case studies across this many jobs.
  unsigned Jobs = 1;
  /// Trace session to record the evaluation into (null: tracing off). The
  /// bench tools use this to source their BENCH_*.json artifacts from the
  /// session's MetricsRegistry.
  trace::TraceSession *Trace = nullptr;
  /// Pure-solver leaf dispatch (VerifyOptions::Portfolio). The bench tools
  /// evaluate Off vs. On to measure how many Figure 7 "manual" side
  /// conditions the bit-vector backend discharges automatically.
  pure::PortfolioMode Portfolio = pure::PortfolioMode::On;
};

/// Verifies all annotated functions of \p CS and aggregates the row.
Fig7Row evaluateCaseStudy(const CaseStudy &CS, const EvalOptions &Opts = {});

/// Evaluates the whole suite in Figure 7 order.
std::vector<Fig7Row> evaluateAll(const EvalOptions &Opts = {});

/// Renders rows as the Figure 7 table (ASCII).
std::string renderFig7Table(const std::vector<Fig7Row> &Rows);

/// Executes the case study's driver on \p Seeds interpreter schedules;
/// returns an empty string on success or the first failure description.
std::string runSemantics(const CaseStudy &CS,
                         const std::vector<uint64_t> &Seeds);

} // namespace rcc::casestudies

#endif // RCC_CASESTUDIES_EVALUATE_H
