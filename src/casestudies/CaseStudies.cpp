//===- CaseStudies.cpp - Annotated sources of the evaluation suite --------===//
//
// Part of RefinedC++, a C++ reproduction of the RefinedC verifier (PLDI'21).
//
//===----------------------------------------------------------------------===//

#include "casestudies/CaseStudies.h"

using namespace rcc::casestudies;

namespace {

//===----------------------------------------------------------------------===//
// #1 Singly linked list
//===----------------------------------------------------------------------===//

const char *SlistSource = R"(
// Singly linked list refined by the multiset of stored values.
typedef struct
[[rc::refined_by("s: {gmultiset nat}")]]
[[rc::ptr_type("slist_t: {s != {[]}} @ optional<&own<...>, null>")]]
[[rc::exists("v: nat", "tail: {gmultiset nat}")]]
[[rc::constraints("{s = {[v]} (+) tail}")]]
snode {
  [[rc::field("v @ int<size_t>")]] size_t value;
  [[rc::field("tail @ slist_t")]] struct snode* next;
}* slist_t;

[[rc::parameters("s: {gmultiset nat}", "p: loc", "v: nat")]]
[[rc::args("p @ &own<s @ slist_t>", "&own<uninit<16>>", "v @ int<size_t>")]]
[[rc::ensures("own p : {{[v]} (+) s} @ slist_t")]]
[[rc::tactics("multiset_solver")]]
void slist_push(slist_t* l, void* mem, size_t v) {
  struct snode* n = mem;
  n->value = v;
  n->next = *l;
  *l = n;
}

[[rc::parameters("s: {gmultiset nat}", "p: loc")]]
[[rc::args("p @ &own<s @ slist_t>")]]
[[rc::requires("{s != {[]}}")]]
[[rc::exists("v: nat", "rest: {gmultiset nat}")]]
[[rc::returns("v @ int<size_t>")]]
[[rc::ensures("own p : rest @ slist_t", "{s = {[v]} (+) rest}")]]
[[rc::tactics("multiset_solver")]]
size_t slist_pop(slist_t* l) {
  struct snode* h = *l;
  size_t v = h->value;
  *l = h->next;
  return v;
}

// Traversal with a magic-wand loop invariant: count the nodes.
[[rc::parameters("s: {gmultiset nat}", "p: loc")]]
[[rc::args("p @ &own<s @ slist_t>")]]
[[rc::returns("{size(s)} @ int<size_t>")]]
[[rc::ensures("own p : s @ slist_t")]]
[[rc::tactics("multiset_solver")]]
size_t slist_length(slist_t* l) {
  slist_t* cur = l;
  size_t count = 0;
  [[rc::exists("cp: loc", "cs: {gmultiset nat}")]]
  [[rc::inv_vars("cur: cp @ &own<cs @ slist_t>")]]
  [[rc::inv_vars("count: {size(s) - size(cs)} @ int<size_t>")]]
  [[rc::inv_vars("l: p @ &own<wand<own cp : cs @ slist_t,"
                 "s @ slist_t>>")]]
  [[rc::constraints("{size(cs) <= size(s)}")]]
  while (*cur != NULL) {
    count += 1;
    cur = &(*cur)->next;
  }
  return count;
}

int main() {
  slist_t head = NULL;
  slist_push(&head, rc_alloc(16), 3);
  slist_push(&head, rc_alloc(16), 7);
  slist_push(&head, rc_alloc(16), 9);
  rc_assert(slist_length(&head) == 3);
  size_t a = slist_pop(&head);
  rc_assert(a == 9);
  rc_assert(slist_length(&head) == 2);
  return (int)slist_pop(&head) + (int)slist_pop(&head);
}
)";

//===----------------------------------------------------------------------===//
// #1 Queue (FIFO by appending at the tail; refined by a multiset)
//===----------------------------------------------------------------------===//

const char *QueueSource = R"(
typedef struct
[[rc::refined_by("s: {gmultiset nat}")]]
[[rc::ptr_type("queue_t: {s != {[]}} @ optional<&own<...>, null>")]]
[[rc::exists("v: nat", "tail: {gmultiset nat}")]]
[[rc::constraints("{s = {[v]} (+) tail}")]]
qnode {
  [[rc::field("v @ int<size_t>")]] size_t value;
  [[rc::field("tail @ queue_t")]] struct qnode* next;
}* queue_t;

// Enqueue walks to the end of the list (list-segment reasoning via wand).
[[rc::parameters("s: {gmultiset nat}", "p: loc", "v: nat")]]
[[rc::args("p @ &own<s @ queue_t>", "&own<uninit<16>>", "v @ int<size_t>")]]
[[rc::ensures("own p : {{[v]} (+) s} @ queue_t")]]
[[rc::tactics("multiset_solver")]]
void queue_put(queue_t* q, void* mem, size_t v) {
  queue_t* cur = q;
  [[rc::exists("cp: loc", "cs: {gmultiset nat}")]]
  [[rc::inv_vars("cur: cp @ &own<cs @ queue_t>")]]
  [[rc::inv_vars("q: p @ &own<wand<own cp : {{[v]} (+) cs} @ queue_t,"
                 "{{[v]} (+) s} @ queue_t>>")]]
  while (*cur != NULL) {
    cur = &(*cur)->next;
  }
  struct qnode* n = mem;
  n->value = v;
  n->next = *cur;
  *cur = n;
}

[[rc::parameters("s: {gmultiset nat}", "p: loc")]]
[[rc::args("p @ &own<s @ queue_t>")]]
[[rc::requires("{s != {[]}}")]]
[[rc::exists("v: nat", "rest: {gmultiset nat}")]]
[[rc::returns("v @ int<size_t>")]]
[[rc::ensures("own p : rest @ queue_t", "{s = {[v]} (+) rest}")]]
[[rc::tactics("multiset_solver")]]
size_t queue_take(queue_t* q) {
  struct qnode* h = *q;
  size_t v = h->value;
  *q = h->next;
  return v;
}

int main() {
  queue_t head = NULL;
  queue_put(&head, rc_alloc(16), 1);
  queue_put(&head, rc_alloc(16), 2);
  queue_put(&head, rc_alloc(16), 3);
  rc_assert(queue_take(&head) == 1);
  rc_assert(queue_take(&head) == 2);
  rc_assert(queue_take(&head) == 3);
  return 0;
}
)";

//===----------------------------------------------------------------------===//
// #1 Binary search (array + first-class function pointer)
//===----------------------------------------------------------------------===//

const char *BsearchSource = R"(
// Comparator type: a RefinedC function type on a typedef (Section 4:
// function types are first class).
typedef
[[rc::parameters("x: nat", "y: nat")]]
[[rc::args("x @ int<size_t>", "y @ int<size_t>")]]
[[rc::returns("{x <= y} @ bool<i32>")]]
int cmp_t(size_t, size_t);

[[rc::parameters("x: nat", "y: nat")]]
[[rc::args("x @ int<size_t>", "y @ int<size_t>")]]
[[rc::returns("{x <= y} @ bool<i32>")]]
int cmp_leq(size_t a, size_t b) {
  return a <= b;
}

// Lower-bound binary search over an array of size_t, through a comparator
// function pointer. The returned index is within bounds.
[[rc::parameters("xs: {list nat}", "a: loc", "k: nat")]]
[[rc::args("a @ &own<xs @ array<int<size_t>>>",
           "{length(xs)} @ int<size_t>", "k @ int<size_t>", "fn<cmp_t>")]]
[[rc::exists("i: nat")]]
[[rc::returns("i @ int<size_t>")]]
[[rc::ensures("{i <= length(xs)}",
              "own a : xs @ array<int<size_t>>")]]
size_t bsearch_pos(size_t* arr, size_t n, size_t key, cmp_t* leq) {
  size_t lo = 0;
  size_t hi = n;
  [[rc::exists("l: nat", "h: nat")]]
  [[rc::inv_vars("lo: l @ int<size_t>", "hi: h @ int<size_t>")]]
  [[rc::inv_vars("arr: a @ &own<xs @ array<int<size_t>>>")]]
  [[rc::constraints("{l <= h}", "{h <= length(xs)}")]]
  while (lo < hi) {
    size_t mid = lo + (hi - lo) / 2;
    if (leq(arr[mid], key)) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

// A client of the searcher (the paper verifies "a client of it").
[[rc::parameters("xs: {list nat}", "a: loc", "k: nat")]]
[[rc::args("a @ &own<xs @ array<int<size_t>>>",
           "{length(xs)} @ int<size_t>", "k @ int<size_t>")]]
[[rc::exists("i: nat")]]
[[rc::returns("i @ int<size_t>")]]
[[rc::ensures("{i <= length(xs)}",
              "own a : xs @ array<int<size_t>>")]]
size_t bsearch_client(size_t* arr, size_t n, size_t key) {
  return bsearch_pos(arr, n, key, cmp_leq);
}

int main() {
  size_t arr[8];
  for (int i = 0; i < 8; i += 1) { arr[i] = (size_t)(i * 2); }
  size_t pos = bsearch_client(arr, 8, 5);
  rc_assert(pos == 3);
  rc_assert(bsearch_client(arr, 8, 0) == 1);
  rc_assert(bsearch_client(arr, 8, 100) == 8);
  return (int)pos;
}
)";

//===----------------------------------------------------------------------===//
// #2 Thread-safe allocator (global arena protected by an atomic boolean)
//===----------------------------------------------------------------------===//

const char *TsAllocSource = R"(
struct [[rc::refined_by("a: nat")]] tsmem {
  [[rc::field("a @ int<size_t>")]] size_t len;
  [[rc::field("&own<uninit<a>>")]] unsigned char* buffer;
};

[[rc::global("atomicbool<u32, true, own global(arena) : exists a. a @ tsmem>")]]
unsigned int arena_lock = 0;
struct tsmem arena;

// Allocate from the shared arena; the spinlock's CAS transfers ownership of
// the arena in and the release store transfers it back (Section 6's
// atomicbool reasoning).
[[rc::parameters("n: nat")]]
[[rc::args("n @ int<size_t>")]]
[[rc::exists("ok: bool")]]
[[rc::returns("ok @ optional<&own<uninit<n>>, null>")]]
void* ts_alloc(size_t sz) {
  unsigned int expected = 0;
  [[rc::inv_vars("expected: {0} @ int<u32>")]]
  while (!atomic_compare_exchange_strong(&arena_lock, &expected, 1)) {
    expected = 0;
  }
  void* ret = NULL;
  if (sz <= arena.len) {
    arena.len -= sz;
    ret = arena.buffer + arena.len;
  }
  atomic_store(&arena_lock, 0);
  return ret;
}

void worker(void* unused) {
  void* p = ts_alloc(8);
  if (p != NULL) {
    unsigned char* b = p;
    b[0] = 1;
    b[7] = 2;
  }
}

int main() {
  arena.len = 64;
  arena.buffer = rc_alloc(64);
  int t1 = rc_spawn(worker, NULL);
  int t2 = rc_spawn(worker, NULL);
  rc_join(t1);
  rc_join(t2);
  void* q = ts_alloc(48);
  rc_assert(q != NULL);
  void* r = ts_alloc(48);
  rc_assert(r == NULL);
  return 0;
}
)";

//===----------------------------------------------------------------------===//
// #2 Page allocator (page-granular ownership splitting)
//===----------------------------------------------------------------------===//

const char *PageAllocSource = R"(
struct [[rc::refined_by("a: nat")]] page_alloc {
  [[rc::field("a @ int<size_t>")]] size_t free_pages;
  [[rc::field("&own<uninit<{a * 4096}>>")]] unsigned char* next_page;
};

[[rc::parameters("a: nat", "p: loc", "n: nat")]]
[[rc::args("p @ &own<a @ page_alloc>", "n @ int<size_t>")]]
[[rc::returns("{n <= a} @ optional<&own<uninit<{n * 4096}>>, null>")]]
[[rc::ensures("own p : {n <= a ? a - n : a} @ page_alloc")]]
void* page_get(struct page_alloc* pa, size_t count) {
  if (count > pa->free_pages) return NULL;
  pa->free_pages -= count;
  unsigned char* res = pa->next_page;
  pa->next_page = res + count * 4096;
  return res;
}

struct page_alloc ppool;

int main() {
  ppool.free_pages = 4;
  ppool.next_page = rc_alloc(4 * 4096);
  unsigned char* a = page_get(&ppool, 1);
  unsigned char* b = page_get(&ppool, 3);
  unsigned char* c = page_get(&ppool, 1);
  rc_assert(a != NULL);
  rc_assert(b != NULL);
  rc_assert(c == NULL);
  a[0] = 1; a[4095] = 2;
  b[0] = 3; b[3 * 4096 - 1] = 4;
  return a[0] + a[4095] + b[0] + b[3 * 4096 - 1];
}
)";

//===----------------------------------------------------------------------===//
// #3 Binary search tree (direct: C straight to the multiset specification)
//===----------------------------------------------------------------------===//

const char *BstDirectSource = R"(
typedef struct
[[rc::refined_by("s: {gmultiset nat}")]]
[[rc::ptr_type("tree_t: {s != {[]}} @ optional<&own<...>, null>")]]
[[rc::exists("v: nat", "ls: {gmultiset nat}", "rs: {gmultiset nat}")]]
[[rc::constraints("{s = {[v]} (+) (ls (+) rs)}",
                  "{forall k, k in ls -> k < v}",
                  "{forall k, k in rs -> v < k}")]]
tnode {
  [[rc::field("v @ int<size_t>")]] size_t value;
  [[rc::field("ls @ tree_t")]] struct tnode* left;
  [[rc::field("rs @ tree_t")]] struct tnode* right;
}* tree_t;

[[rc::parameters("s: {gmultiset nat}", "p: loc", "v: nat")]]
[[rc::args("p @ &own<s @ tree_t>", "&own<uninit<24>>", "v @ int<size_t>")]]
[[rc::requires("{!(v in s)}")]]
[[rc::ensures("own p : {{[v]} (+) s} @ tree_t")]]
[[rc::tactics("multiset_solver")]]
void tree_insert(tree_t* t, void* mem, size_t v) {
  tree_t* cur = t;
  [[rc::exists("cp: loc", "cs: {gmultiset nat}")]]
  [[rc::inv_vars("cur: cp @ &own<cs @ tree_t>")]]
  [[rc::inv_vars("t: p @ &own<wand<own cp : {{[v]} (+) cs} @ tree_t,"
                 "{{[v]} (+) s} @ tree_t>>")]]
  [[rc::constraints("{!(v in cs)}")]]
  while (*cur != NULL) {
    if (v < (*cur)->value) {
      cur = &(*cur)->left;
    } else {
      cur = &(*cur)->right;
    }
  }
  struct tnode* n = mem;
  n->value = v;
  n->left = NULL;
  n->right = NULL;
  *cur = n;
}

[[rc::parameters("s: {gmultiset nat}", "p: loc", "v: nat")]]
[[rc::args("p @ &own<s @ tree_t>", "v @ int<size_t>")]]
[[rc::exists("r: bool")]]
[[rc::returns("r @ bool<i32>")]]
[[rc::ensures("own p : s @ tree_t")]]
[[rc::tactics("multiset_solver")]]
int tree_contains(tree_t* t, size_t v) {
  tree_t* cur = t;
  [[rc::exists("cp: loc", "cs: {gmultiset nat}")]]
  [[rc::inv_vars("cur: cp @ &own<cs @ tree_t>")]]
  [[rc::inv_vars("t: p @ &own<wand<own cp : cs @ tree_t, s @ tree_t>>")]]
  while (*cur != NULL) {
    if ((*cur)->value == v) {
      return 1;
    }
    if (v < (*cur)->value) {
      cur = &(*cur)->left;
    } else {
      cur = &(*cur)->right;
    }
  }
  return 0;
}

int main() {
  tree_t root = NULL;
  tree_insert(&root, rc_alloc(24), 5);
  tree_insert(&root, rc_alloc(24), 2);
  tree_insert(&root, rc_alloc(24), 8);
  tree_insert(&root, rc_alloc(24), 6);
  rc_assert(tree_contains(&root, 5));
  rc_assert(tree_contains(&root, 6));
  rc_assert(!tree_contains(&root, 7));
  return 0;
}
)";

//===----------------------------------------------------------------------===//
// #3 Binary search tree (layered: specs go through a functional layer of
// uninterpreted operations whose properties are manual lemmas)
//===----------------------------------------------------------------------===//

const char *BstLayeredSource = R"(
typedef struct
[[rc::refined_by("s: {gmultiset nat}")]]
[[rc::ptr_type("ltree_t: {s != {[]}} @ optional<&own<...>, null>")]]
[[rc::exists("v: nat", "ls: {gmultiset nat}", "rs: {gmultiset nat}")]]
[[rc::constraints("{s = {[v]} (+) (ls (+) rs)}",
                  "{forall k, k in ls -> k < v}",
                  "{forall k, k in rs -> v < k}")]]
lnode {
  [[rc::field("v @ int<size_t>")]] size_t value;
  [[rc::field("ls @ ltree_t")]] struct lnode* left;
  [[rc::field("rs @ ltree_t")]] struct lnode* right;
}* ltree_t;

// The intermediate functional layer: `tinsert` is an abstract operation on
// the model, related to the multiset by a manually proved lemma (the
// paper's layered approach needs substantially more pure reasoning).
[[rc::parameters("s: {gmultiset nat}", "p: loc", "v: nat")]]
[[rc::args("p @ &own<s @ ltree_t>", "&own<uninit<24>>", "v @ int<size_t>")]]
[[rc::requires("{!(v in s)}")]]
[[rc::lemma("tinsert_elems", "{tinsert(s, v) = {[v]} (+) s}", "64")]]
[[rc::lemma("tinsert_sorted", "{forall k, k in s -> k in tinsert(s, v)}", "64")]]
[[rc::ensures("own p : {tinsert(s, v)} @ ltree_t")]]
[[rc::tactics("multiset_solver")]]
void ltree_insert(ltree_t* t, void* mem, size_t v) {
  ltree_t* cur = t;
  [[rc::exists("cp: loc", "cs: {gmultiset nat}")]]
  [[rc::inv_vars("cur: cp @ &own<cs @ ltree_t>")]]
  [[rc::inv_vars("t: p @ &own<wand<own cp : {{[v]} (+) cs} @ ltree_t,"
                 "{{[v]} (+) s} @ ltree_t>>")]]
  [[rc::constraints("{!(v in cs)}")]]
  while (*cur != NULL) {
    if (v < (*cur)->value) {
      cur = &(*cur)->left;
    } else {
      cur = &(*cur)->right;
    }
  }
  struct lnode* n = mem;
  n->value = v;
  n->left = NULL;
  n->right = NULL;
  *cur = n;
}

int main() {
  ltree_t root = NULL;
  ltree_insert(&root, rc_alloc(24), 4);
  ltree_insert(&root, rc_alloc(24), 1);
  ltree_insert(&root, rc_alloc(24), 9);
  return 0;
}
)";

//===----------------------------------------------------------------------===//
// #4 Linear probing hashmap (parallel state/key/value arrays)
//===----------------------------------------------------------------------===//

const char *HashmapSource = R"(
// Open-addressing hashmap with linear probing over parallel arrays:
// states[i] (0 = empty, 1 = full), keys[i], vals[i].

// Probe for a key: returns its slot, or the first empty slot on its probe
// path, or n when the table is saturated.
[[rc::parameters("ss: {list nat}", "ks: {list nat}", "sp: loc", "kp: loc",
                 "n: nat", "k: nat")]]
[[rc::args("sp @ &own<ss @ array<int<size_t>>>",
           "kp @ &own<ks @ array<int<size_t>>>",
           "n @ int<size_t>", "k @ int<size_t>")]]
[[rc::requires("{n = length(ss)}", "{n = length(ks)}", "{0 < n}")]]
[[rc::exists("i: nat")]]
[[rc::returns("i @ int<size_t>")]]
[[rc::ensures("{i <= length(ss)}",
              "{i < length(ss) -> (ks !! i = k || ss !! i = 0)}",
              "own sp : ss @ array<int<size_t>>",
              "own kp : ks @ array<int<size_t>>")]]
size_t hm_probe(size_t* states, size_t* keys, size_t n, size_t k) {
  size_t i = k % n;
  size_t steps = 0;
  [[rc::exists("j: nat", "c: nat")]]
  [[rc::inv_vars("i: j @ int<size_t>", "steps: c @ int<size_t>")]]
  [[rc::constraints("{j < length(ss)}")]]
  while (steps < n) {
    if (states[i] == 0) {
      return i;
    }
    if (keys[i] == k) {
      return i;
    }
    i = (i + 1) % n;
    steps = steps + 1;
  }
  return n;
}

// Insert (or update) a binding; returns the slot used, or n when full.
[[rc::parameters("ss: {list nat}", "ks: {list nat}", "vs: {list nat}",
                 "sp: loc", "kp: loc", "vp: loc", "n: nat", "k: nat",
                 "v: nat")]]
[[rc::args("sp @ &own<ss @ array<int<size_t>>>",
           "kp @ &own<ks @ array<int<size_t>>>",
           "vp @ &own<vs @ array<int<size_t>>>",
           "n @ int<size_t>", "k @ int<size_t>", "v @ int<size_t>")]]
[[rc::requires("{n = length(ss)}", "{n = length(ks)}",
               "{n = length(vs)}", "{0 < n}")]]
[[rc::exists("i: nat")]]
[[rc::returns("i @ int<size_t>")]]
[[rc::ensures("{i <= length(ss)}",
              "own sp : {i < length(ss) ? update(ss, i, 1) : ss}"
              " @ array<int<size_t>>",
              "own kp : {i < length(ss) ? update(ks, i, k) : ks}"
              " @ array<int<size_t>>",
              "own vp : {i < length(ss) ? update(vs, i, v) : vs}"
              " @ array<int<size_t>>")]]
size_t hm_put(size_t* states, size_t* keys, size_t* vals, size_t n,
              size_t k, size_t v) {
  size_t i = hm_probe(states, keys, n, k);
  if (i < n) {
    states[i] = 1;
    keys[i] = k;
    vals[i] = v;
  }
  return i;
}

// Lookup through the functional layer: `hmval` is the abstract map lookup,
// related to the arrays by a manually proved lemma (the paper reports the
// hashmap needs the most manual pure reasoning of all case studies).
[[rc::parameters("ss: {list nat}", "ks: {list nat}", "vs: {list nat}",
                 "sp: loc", "kp: loc", "vp: loc", "n: nat", "k: nat")]]
[[rc::args("sp @ &own<ss @ array<int<size_t>>>",
           "kp @ &own<ks @ array<int<size_t>>>",
           "vp @ &own<vs @ array<int<size_t>>>",
           "n @ int<size_t>", "k @ int<size_t>")]]
[[rc::requires("{n = length(ss)}", "{n = length(ks)}",
               "{n = length(vs)}", "{0 < n}")]]
[[rc::lemma("hm_val_at",
            "{forall i2, ((ks !! i2) = k) -> (hmval(k) = (vs !! i2))}",
            "265")]]
[[rc::exists("r: nat")]]
[[rc::returns("r @ int<size_t>")]]
[[rc::ensures("{r = hmval(k) || r = 0}",
              "own sp : ss @ array<int<size_t>>",
              "own kp : ks @ array<int<size_t>>",
              "own vp : vs @ array<int<size_t>>")]]
size_t hm_get(size_t* states, size_t* keys, size_t* vals, size_t n,
              size_t k) {
  size_t i = hm_probe(states, keys, n, k);
  if (i < n) {
    if (states[i] == 1) {
      if (keys[i] == k) {
        return vals[i];
      }
    }
  }
  return 0;
}

int main() {
  size_t states[8];
  size_t keys[8];
  size_t vals[8];
  for (int i = 0; i < 8; i += 1) { states[i] = 0; keys[i] = 0; vals[i] = 0; }
  rc_assert(hm_put(states, keys, vals, 8, 3, 30) < 8);
  rc_assert(hm_put(states, keys, vals, 8, 11, 110) < 8); // collides with 3
  rc_assert(hm_put(states, keys, vals, 8, 5, 50) < 8);
  rc_assert(hm_get(states, keys, vals, 8, 3) == 30);
  rc_assert(hm_get(states, keys, vals, 8, 11) == 110);
  rc_assert(hm_get(states, keys, vals, 8, 5) == 50);
  rc_assert(hm_get(states, keys, vals, 8, 4) == 0);
  return 0;
}
)";

//===----------------------------------------------------------------------===//
// #5 Hafnium-style mpool allocator (freelist of pages behind a spinlock)
//===----------------------------------------------------------------------===//

const char *MpoolSource = R"(
// A pool of 4096-byte pages kept in an intrusive freelist (each free page's
// first bytes hold the list node; rc::size overlays the header on the page,
// as in Figure 3). Refined by the number of available pages.
typedef struct
[[rc::refined_by("c: nat")]]
[[rc::ptr_type("mpentry_t: {c != 0} @ optional<&own<...>, null>")]]
[[rc::exists("tail: nat")]]
[[rc::size("{4096}")]]
[[rc::constraints("{c = tail + 1}")]]
mpentry {
  [[rc::field("tail @ mpentry_t")]] struct mpentry* next;
}* mpentry_t;

struct [[rc::refined_by("c: nat")]] mpool {
  [[rc::field("c @ mpentry_t")]] struct mpentry* chunks;
};

[[rc::global("atomicbool<u32, true, own global(pool) : exists c. c @ mpool>")]]
unsigned int pool_lock = 0;
struct mpool pool;

// Allocate one page: lock, pop, unlock (the paper's mpool combines the
// freelist, padding, and lock techniques).
[[rc::exists("ok: bool")]]
[[rc::returns("ok @ optional<&own<uninit<{4096}>>, null>")]]
void* mpool_alloc(void) {
  unsigned int expected = 0;
  [[rc::inv_vars("expected: {0} @ int<u32>")]]
  while (!atomic_compare_exchange_strong(&pool_lock, &expected, 1)) {
    expected = 0;
  }
  struct mpentry* entry = pool.chunks;
  void* ret = NULL;
  if (entry != NULL) {
    pool.chunks = entry->next;
    ret = entry;
  }
  atomic_store(&pool_lock, 0);
  return ret;
}

// Return one page to the pool.
[[rc::args("&own<uninit<{4096}>>")]]
void mpool_free(void* page) {
  unsigned int expected = 0;
  [[rc::inv_vars("expected: {0} @ int<u32>")]]
  while (!atomic_compare_exchange_strong(&pool_lock, &expected, 1)) {
    expected = 0;
  }
  struct mpentry* entry = page;
  entry->next = pool.chunks;
  pool.chunks = entry;
  atomic_store(&pool_lock, 0);
}

void mworker(void* unused) {
  void* a = mpool_alloc();
  if (a != NULL) {
    unsigned char* b = a;
    b[0] = 1;
    b[4095] = 2;
    mpool_free(a);
  }
}

int main() {
  pool.chunks = NULL;
  mpool_free(rc_alloc(4096));
  mpool_free(rc_alloc(4096));
  int t1 = rc_spawn(mworker, NULL);
  int t2 = rc_spawn(mworker, NULL);
  rc_join(t1);
  rc_join(t2);
  void* p1 = mpool_alloc();
  void* p2 = mpool_alloc();
  void* p3 = mpool_alloc();
  rc_assert(p1 != NULL);
  rc_assert(p2 != NULL);
  rc_assert(p3 == NULL);
  return 0;
}
)";

//===----------------------------------------------------------------------===//
// #6 Spinlock (protecting a shared counter)
//===----------------------------------------------------------------------===//

const char *SpinlockSource = R"(
[[rc::global("atomicbool<u32, true,"
             "own global(counter) : exists c. c @ int<u64>>")]]
unsigned int lock = 0;
size_t counter;

// Acquire: spin on CAS(false -> true); on success the lock's payload (the
// counter's ownership) transfers to the caller (CAS-BOOL, Figure 6).
[[rc::ensures("own global(counter) : exists c. c @ int<u64>")]]
void spin_lock(void) {
  unsigned int expected = 0;
  [[rc::inv_vars("expected: {0} @ int<u32>")]]
  while (!atomic_compare_exchange_strong(&lock, &expected, 1)) {
    expected = 0;
  }
}

// Release: storing false requires handing the payload back.
[[rc::requires("own global(counter) : exists c. c @ int<u64>")]]
void spin_unlock(void) {
  atomic_store(&lock, 0);
}

// A verified client: increment the shared counter under the lock.
[[rc::parameters()]]
void shared_inc(void) {
  spin_lock();
  counter = counter + 1;
  spin_unlock();
}

void sworker(void* unused) {
  shared_inc();
  shared_inc();
}

int main() {
  counter = 0;
  int t1 = rc_spawn(sworker, NULL);
  int t2 = rc_spawn(sworker, NULL);
  rc_join(t1);
  rc_join(t2);
  spin_lock();
  size_t v = counter;
  spin_unlock();
  rc_assert(v == 4);
  return (int)v;
}
)";

//===----------------------------------------------------------------------===//
// #6 One-time barrier (take-once handoff through an atomic boolean)
//===----------------------------------------------------------------------===//

const char *BarrierSource = R"(
[[rc::global("atomicbool<u32,"
             "own global(payload) : exists v. v @ int<u64>, true>")]]
unsigned int barrier_flag = 0;
size_t payload;

// Signal: publish the payload by setting the flag (atomic store of true
// hands the payload to the barrier).
[[rc::requires("own global(payload) : exists v. v @ int<u64>")]]
void barrier_signal(void) {
  atomic_store(&barrier_flag, 1);
}

// Wait-and-take: spin until the flag is set, taking the payload exactly
// once (CAS true -> false receives the payload and clears the flag).
[[rc::ensures("own global(payload) : exists v. v @ int<u64>")]]
void barrier_take(void) {
  unsigned int expected = 1;
  [[rc::inv_vars("expected: {1} @ int<u32>")]]
  while (!atomic_compare_exchange_strong(&barrier_flag, &expected, 0)) {
    expected = 1;
  }
}

void bproducer(void* unused) {
  payload = 42;
  barrier_signal();
}

int main() {
  int t = rc_spawn(bproducer, NULL);
  barrier_take();
  size_t v = payload;
  rc_join(t);
  rc_assert(v == 42);
  return (int)v;
}
)";

//===----------------------------------------------------------------------===//
// #7 Bitmap word (word-level reasoning: shifts, masks, bitwise ops)
//===----------------------------------------------------------------------===//

const char *BitmapSource = R"(
// A 32-bit bitmap word manipulated with shifts and masks. The side
// conditions are word-level (pow2 ranges, bitwise-or/and bounds): the
// bit-vector portfolio backend discharges them automatically, while the
// pre-portfolio solver needs the annotated lemmas (modeled manual proofs).
// There is no bitwise-not in the source language; clearing uses the
// all-ones xor idiom.

[[rc::parameters("w: nat", "i: nat")]]
[[rc::args("w @ int<u32>", "i @ int<u32>")]]
[[rc::requires("{w < 2147483648}", "{i < 31}")]]
[[rc::lemma("lor_le", "{forall a, forall b, lor(a, b) <= a + b}", "8")]]
[[rc::lemma("pow2_le31", "{forall k, k < 31 -> pow2(k) <= 1073741824}", "6")]]
[[rc::returns("{lor(w, pow2(i))} @ int<u32>")]]
[[rc::ensures("{lor(w, pow2(i)) <= 4294967295}")]]
unsigned int bm_set(unsigned int w, unsigned int i) {
  return w | (1u << i);
}

[[rc::parameters("w: nat", "i: nat")]]
[[rc::args("w @ int<u32>", "i @ int<u32>")]]
[[rc::requires("{w < 2147483648}", "{i < 31}")]]
[[rc::lemma("land_le_l", "{forall a, forall b, land(a, b) <= a}", "6")]]
[[rc::lemma("pow2_le31", "{forall k, k < 31 -> pow2(k) <= 1073741824}", "6")]]
[[rc::returns("{land(w, lxor(4294967295, pow2(i)))} @ int<u32>")]]
[[rc::ensures("{land(w, lxor(4294967295, pow2(i))) <= w}")]]
unsigned int bm_clear(unsigned int w, unsigned int i) {
  return w & (4294967295u ^ (1u << i));
}

[[rc::parameters("w: nat", "i: nat")]]
[[rc::args("w @ int<u32>", "i @ int<u32>")]]
[[rc::requires("{w <= 4294967295}", "{i < 32}")]]
[[rc::lemma("shr_le", "{forall a, forall b, a / b <= a}", "8")]]
[[rc::lemma("land_le_r", "{forall a, forall b, land(a, b) <= b}", "6")]]
[[rc::returns("{land(w / pow2(i), 1)} @ int<u32>")]]
[[rc::ensures("{land(w / pow2(i), 1) <= 1}")]]
unsigned int bm_test(unsigned int w, unsigned int i) {
  return (w >> i) & 1u;
}

[[rc::parameters("w: nat", "m: nat")]]
[[rc::args("w @ int<u32>", "m @ int<u32>")]]
[[rc::requires("{w <= 4294967295}", "{m <= 4294967295}")]]
[[rc::lemma("land_le_r", "{forall a, forall b, land(a, b) <= b}", "6")]]
[[rc::returns("{land(w, m)} @ int<u32>")]]
[[rc::ensures("{land(w, m) <= m}")]]
unsigned int bm_mask(unsigned int w, unsigned int m) {
  return w & m;
}

int main() {
  unsigned int w = 0;
  w = bm_set(w, 3);
  w = bm_set(w, 5);
  rc_assert(bm_test(w, 3) == 1);
  rc_assert(bm_test(w, 4) == 0);
  rc_assert(bm_mask(w, 40) == 40);
  w = bm_clear(w, 3);
  rc_assert(bm_test(w, 3) == 0);
  rc_assert(bm_test(w, 5) == 1);
  return 0;
}
)";

std::vector<CaseStudy> buildAll() {
  std::vector<CaseStudy> Out;
  Out.push_back({"slist", "Singly linked list", "#1", "wand, alloc",
                 SlistSource,
                 {"slist_push", "slist_pop", "slist_length"},
                 false, "main"});
  Out.push_back({"queue", "Queue", "#1", "list segments, alloc", QueueSource,
                 {"queue_put", "queue_take"}, false, "main"});
  Out.push_back({"bsearch", "Binary search", "#1", "arrays, func. ptr.",
                 BsearchSource,
                 {"cmp_leq", "bsearch_pos", "bsearch_client"}, false,
                 "main"});
  Out.push_back({"tsalloc", "Thread-safe allocator", "#2",
                 "wand, padded, lock", TsAllocSource, {"ts_alloc"}, true,
                 "main"});
  Out.push_back({"pagealloc", "Page allocator", "#2", "padded",
                 PageAllocSource, {"page_get"}, false, "main"});
  Out.push_back({"bst_layered", "Bin. search tree (layered)", "#3",
                 "wand, alloc", BstLayeredSource, {"ltree_insert"}, false,
                 "main"});
  Out.push_back({"bst_direct", "Bin. search tree (direct)", "#3",
                 "wand, alloc", BstDirectSource,
                 {"tree_insert", "tree_contains"}, false, "main"});
  Out.push_back({"hashmap", "Linear probing hashmap", "#4",
                 "unions, arrays, alloc", HashmapSource,
                 {"hm_probe", "hm_put", "hm_get"}, false, "main"});
  Out.push_back({"mpool", "Hafnium mpool allocator", "#5",
                 "wand, padded, lock", MpoolSource,
                 {"mpool_alloc", "mpool_free"}, true, "main"});
  Out.push_back({"spinlock", "Spinlock", "#6", "atomic Boolean",
                 SpinlockSource, {"spin_lock", "spin_unlock", "shared_inc"},
                 true, "main"});
  Out.push_back({"barrier", "One-time barrier", "#6", "atomic Boolean",
                 BarrierSource, {"barrier_signal", "barrier_take"}, true,
                 "main"});
  Out.push_back({"bitmap", "Bitmap word", "#7", "int, bit ops", BitmapSource,
                 {"bm_set", "bm_clear", "bm_test", "bm_mask"}, false,
                 "main"});
  return Out;
}

} // namespace

const std::vector<CaseStudy> &rcc::casestudies::allCaseStudies() {
  static const std::vector<CaseStudy> All = buildAll();
  return All;
}

const CaseStudy *rcc::casestudies::caseStudy(const std::string &Id) {
  for (const CaseStudy &C : allCaseStudies())
    if (C.Id == Id)
      return &C;
  return nullptr;
}
