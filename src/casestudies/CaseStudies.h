//===- CaseStudies.h - The Figure 7 evaluation suite ------------*- C++ -*-===//
//
// Part of RefinedC++, a C++ reproduction of the RefinedC verifier (PLDI'21).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The eleven case studies of the paper's evaluation (Section 7, Figure 7),
/// as annotated C sources embedded in the library:
///
///   #1  Singly linked list, Queue, Binary search
///   #2  Thread-safe allocator, Page allocator
///   #3  Binary search tree (layered), Binary search tree (direct)
///   #4  Linear probing hashmap
///   #5  Hafnium-style mpool allocator
///   #6  Spinlock, One-time barrier
///
/// plus one post-paper extension row:
///
///   #7  Bitmap word (word-level side conditions for the bit-vector
///       portfolio backend; see DESIGN.md "Solver portfolio")
///
/// Each case study records the metadata the Figure 7 reproduction needs
/// (class, salient types) and, for the concurrent ones, an executable
/// driver function for the semantic (interpreter) tests.
///
//===----------------------------------------------------------------------===//

#ifndef RCC_CASESTUDIES_CASESTUDIES_H
#define RCC_CASESTUDIES_CASESTUDIES_H

#include <string>
#include <vector>

namespace rcc::casestudies {

struct CaseStudy {
  std::string Id;        ///< short identifier, e.g. "slist"
  std::string Name;      ///< Figure 7 row label
  std::string Class;     ///< "#1" .. "#6"
  std::string TypesUsed; ///< the Figure 7 "Types used" column
  std::string Source;    ///< annotated C source
  std::vector<std::string> Functions; ///< functions to verify, in order
  bool Concurrent = false;
  /// Name of an unannotated driver `main` included in Source for the
  /// semantic-execution tests (empty when none).
  std::string Driver;
};

/// All case studies, in Figure 7 order.
const std::vector<CaseStudy> &allCaseStudies();

/// Looks one up by id; nullptr if unknown.
const CaseStudy *caseStudy(const std::string &Id);

} // namespace rcc::casestudies

#endif // RCC_CASESTUDIES_CASESTUDIES_H
