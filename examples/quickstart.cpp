//===- quickstart.cpp - RefinedC++ in five minutes ------------------------===//
//
// Part of RefinedC++, a C++ reproduction of the RefinedC verifier (PLDI'21).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The smallest end-to-end use of the public API: compile an annotated C
/// source (the paper's Figure 1 allocator), build the specification
/// environment, verify the function, re-check the derivation with the
/// independent proof checker, and finally *execute* the code on the Caesium
/// interpreter to see the verified behavior for real.
///
//===----------------------------------------------------------------------===//

#include "caesium/Interp.h"
#include "frontend/Frontend.h"
#include "refinedc/Checker.h"
#include "refinedc/ProofChecker.h"

#include <cstdio>

using namespace rcc;

static const char *Source = R"(
// The memory allocator of the paper's Figure 1, annotations included.
struct [[rc::refined_by("a: nat")]] mem_t {
  [[rc::field("a @ int<size_t>")]] size_t len;
  [[rc::field("&own<uninit<a>>")]] unsigned char* buffer;
};

[[rc::parameters("a: nat", "n: nat", "p: loc")]]
[[rc::args("p @ &own<a @ mem_t>", "n @ int<size_t>")]]
[[rc::returns("{n <= a} @ optional<&own<uninit<n>>, null>")]]
[[rc::ensures("own p : {n <= a ? a - n : a} @ mem_t")]]
void* alloc(struct mem_t* d, size_t sz) {
  if (sz > d->len) return NULL;
  d->len -= sz;
  return d->buffer + d->len;
}

struct mem_t pool;

int main() {
  pool.len = 32;
  pool.buffer = rc_alloc(32);
  unsigned char* a = alloc(&pool, 8);
  unsigned char* b = alloc(&pool, 24);
  unsigned char* c = alloc(&pool, 1);
  rc_assert(a != NULL);
  rc_assert(b != NULL);
  rc_assert(c == NULL);
  a[0] = 40; b[0] = 2;
  return a[0] + b[0];
}
)";

int main() {
  // 1. Front end: annotated C -> Caesium program + annotation tables.
  DiagnosticEngine Diags;
  auto AP = front::compileSource(Source, Diags);
  if (!AP) {
    printf("%s", Diags.render(Source).c_str());
    return 1;
  }
  printf("compiled: %zu function(s), mem_t is %llu bytes\n",
         AP->Prog.Functions.size(),
         (unsigned long long)AP->structInfo("mem_t")->Layout.Size);

  // 2. Specifications: struct annotations become named refinement types,
  //    function annotations become RefinedC function types.
  refinedc::Checker Checker(*AP, Diags);
  if (!Checker.buildEnv()) {
    printf("%s", Diags.render(Source).c_str());
    return 1;
  }

  // 3. Verify alloc against its specification (Lithium proof search).
  refinedc::FnResult R = Checker.verifyFunction("alloc", {});
  if (!R.Verified) {
    printf("%s", R.renderError(Source).c_str());
    return 1;
  }
  printf("verified `alloc`: %u rule applications (%u distinct rules), "
         "%u side conditions (all automatic: %s)\n",
         R.Stats.RuleApps, (unsigned)R.Stats.RulesUsed.size(),
         R.Stats.SideCondAuto + R.Stats.SideCondManual,
         R.Stats.SideCondManual == 0 ? "yes" : "no");

  // 4. Foundational step: replay the derivation independently.
  refinedc::ProofChecker PC(Checker.rules());
  refinedc::ProofCheckResult P = PC.check(R.Deriv);
  printf("proof re-check: %s (%u rule steps, %u side conditions)\n",
         P.Ok ? "ok" : P.Error.c_str(), P.RuleSteps, P.SideConds);

  // 5. Run it: the Caesium interpreter executes main under the same
  //    semantics the verification was carried out against.
  caesium::Machine M(AP->Prog);
  caesium::ExecResult E = M.run("main", {});
  if (!E.ok()) {
    printf("execution failed: %s\n", E.Message.c_str());
    return 1;
  }
  printf("executed main() -> %lld (machine steps: %llu)\n",
         (long long)E.MainRet.asSigned(), (unsigned long long)M.stepsTaken());
  return 0;
}
