// demo.c — input for examples/verify_tool: a small annotated module.
//
//   ./build/examples/verify_tool --stats --run examples/demo.c
//
// Every rc::-annotated function is verified; main is executed afterwards on
// the Caesium interpreter.

struct [[rc::refined_by("a: nat")]] arena_t {
  [[rc::field("a @ int<size_t>")]] size_t len;
  [[rc::field("&own<uninit<a>>")]] unsigned char* buffer;
};

[[rc::parameters("a: nat", "n: nat", "p: loc")]]
[[rc::args("p @ &own<a @ arena_t>", "n @ int<size_t>")]]
[[rc::returns("{n <= a} @ optional<&own<uninit<n>>, null>")]]
[[rc::ensures("own p : {n <= a ? a - n : a} @ arena_t")]]
void* arena_alloc(struct arena_t* d, size_t sz) {
  if (sz > d->len) return NULL;
  d->len -= sz;
  return d->buffer + d->len;
}

[[rc::parameters("x: nat", "y: nat", "p: loc", "q: loc")]]
[[rc::args("p @ &own<x @ int<size_t>>", "q @ &own<y @ int<size_t>>")]]
[[rc::ensures("own p : y @ int<size_t>", "own q : x @ int<size_t>")]]
void swap(size_t* a, size_t* b) {
  size_t t = *a;
  *a = *b;
  *b = t;
}

[[rc::parameters("a: nat", "b: nat")]]
[[rc::args("a @ int<size_t>", "b @ int<size_t>")]]
[[rc::exists("m: nat")]]
[[rc::returns("m @ int<size_t>")]]
[[rc::ensures("{a <= m}", "{b <= m}")]]
size_t max_sz(size_t a, size_t b) {
  return a < b ? b : a;
}

struct arena_t arena;

int main() {
  arena.len = 64;
  arena.buffer = rc_alloc(64);
  unsigned char* block = arena_alloc(&arena, 16);
  rc_assert(block != NULL);
  block[0] = 1;

  size_t x = 3;
  size_t y = 39;
  swap(&x, &y);
  rc_assert(x == 39);

  return (int)max_sz(x, y) + block[0] + 2;
}
