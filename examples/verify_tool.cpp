//===- verify_tool.cpp - A command-line RefinedC++ verifier ---------------===//
//
// Part of RefinedC++, a C++ reproduction of the RefinedC verifier (PLDI'21).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The downstream-user tool: `verify_tool file.c [function...]` verifies the
/// named functions (default: every function carrying rc:: annotations) and
/// prints per-function results with the paper's error-message format on
/// failure. Exit code 0 iff everything verified. Flags:
///
///   --stats        print per-function rule/side-condition statistics
///   --no-recheck   skip the independent derivation replay (also downgrades
///                  persistent-cache hits to content-hash trust)
///   --jobs=N       run N verification jobs concurrently (0 = all cores)
///   --cache-dir=D  persist verification results under D and reuse them on
///                  later runs (entries are replayed through the proof
///                  checker before being trusted; see DESIGN.md)
///   --shared-dir=D probe/publish the shared L3 artifact store under D (the
///                  fleet's proof store; hits are replayed before trust
///                  exactly like L2 hits)
///   --no-cache     bypass the result store entirely
///   --format=F     `json` prints the ProgramResult as JSON instead of text
///                  (with --run, the JSON carries a `run` object with the
///                  execution status, return value, and failure message);
///                  `stable-json` prints only the schedule/topology-
///                  independent subset, byte-identical across --jobs values
///                  and fleet topologies; `text` is the default
///   --run[=fn]     additionally execute `fn` (default main) afterwards
///   --connect=SOCK thin-client mode: instead of verifying in-process,
///                  send a `check` request to a running `verifyd` on the
///                  Unix socket SOCK and forward its JSON-lines
///                  diagnostics (exit 0 iff the daemon reports
///                  all_verified)
///   --trace=FILE   write a Chrome trace-event JSON of the whole pipeline
///                  (load in chrome://tracing or https://ui.perfetto.dev)
///   --trace-cap=N  cap each thread's trace buffer at N events (ring
///                  truncation; dropped events are counted in the metrics)
///   --profile      print the proof-search profile report (top rules by
///                  cumulative/self time, goal kinds, solver stats)
///   --deterministic-trace  make trace/profile output byte-identical across
///                  --jobs values (stable lanes, ordinal timestamps)
///   --portfolio=M  pure-solver leaf dispatch: `on` (default; sequential
///                  portfolio incl. the bit-vector backend), `race` (race
///                  eligible backends, deterministic attribution), `off`
///                  (pre-portfolio dispatch, no bit-vector backend)
///   --version      print the version and exit
///
/// Flags are declared against the shared opts::OptionParser (the same
/// parser behind verifyd and rcc-lsp), so unknown `--` flags stay a usage
/// error (exit 2) and a typo cannot silently verify with the wrong
/// configuration.
///
//===----------------------------------------------------------------------===//

#include "caesium/Interp.h"
#include "frontend/Frontend.h"
#include "refinedc/Checker.h"
#include "support/Options.h"
#include "support/Util.h"
#include "trace/Export.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace rcc;

/// Thin-client mode (`--connect=SOCK`): a second invocation next to a
/// running verifyd does not re-load or re-verify anything — it asks the
/// daemon (whose L1 is warm across revisions) for a check and forwards the
/// JSON-lines diagnostics. Exit 0 iff the terminating event reports
/// all_verified.
static int runClient(const std::string &Sock) {
  int Fd = socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    perror("socket");
    return 2;
  }
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (Sock.size() >= sizeof(Addr.sun_path)) {
    fprintf(stderr, "error: socket path too long: %s\n", Sock.c_str());
    close(Fd);
    return 2;
  }
  memcpy(Addr.sun_path, Sock.c_str(), Sock.size() + 1);
  if (connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    fprintf(stderr, "error: cannot connect to verifyd at '%s': %s\n",
            Sock.c_str(), strerror(errno));
    close(Fd);
    return 2;
  }
  const char Req[] = "check\n";
  if (write(Fd, Req, sizeof(Req) - 1) != sizeof(Req) - 1) {
    perror("write");
    close(Fd);
    return 2;
  }
  // Forward every event line; the revision_done/unchanged event terminates
  // the exchange and carries the verdict.
  std::string Buf;
  char Chunk[4096];
  int Exit = 2; // connection dropped before a verdict
  bool Done = false;
  while (!Done) {
    ssize_t N = read(Fd, Chunk, sizeof(Chunk));
    if (N <= 0)
      break;
    Buf.append(Chunk, static_cast<size_t>(N));
    size_t NL;
    while ((NL = Buf.find('\n')) != std::string::npos) {
      std::string Line = Buf.substr(0, NL);
      Buf.erase(0, NL + 1);
      printf("%s\n", Line.c_str());
      if (Line.find("\"event\": \"revision_done\"") != std::string::npos ||
          Line.find("\"event\": \"unchanged\"") != std::string::npos) {
        Exit = Line.find("\"all_verified\": true") != std::string::npos ? 0
                                                                        : 1;
        Done = true;
        break;
      }
      if (Line.find("\"event\": \"error\"") != std::string::npos) {
        Exit = 1;
        Done = true;
        break;
      }
    }
  }
  close(Fd);
  return Exit;
}

int main(int argc, char **argv) {
  std::string Path;
  std::vector<std::string> Functions;
  bool Stats = false, Recheck = true;
  unsigned Jobs = 1, TraceCap = 0;
  std::string RunFn;
  std::string TraceFile;
  std::string CacheDir;
  std::string SharedDir;
  std::string ConnectSock;
  std::string Format = "text";
  bool NoCache = false;
  bool Profile = false, DetTrace = false;
  pure::PortfolioMode Portfolio = pure::PortfolioMode::On;

  opts::OptionParser P("verify_tool", "<file.c> [function...]");
  P.flag("stats", Stats, true, "print per-function statistics")
      .flag("no-recheck", Recheck, false,
            "skip the independent derivation replay")
      .unsignedOpt("jobs", Jobs, "concurrent verification jobs (0 = cores)")
      .strOpt("cache-dir", CacheDir, "persistent result store directory")
      .strOpt("shared-dir", SharedDir, "shared L3 artifact store directory")
      .flag("no-cache", NoCache, true, "bypass the result store")
      .strOpt("connect", ConnectSock, "thin-client mode: verifyd socket")
      .custom("format",
              [&Format](const std::string &V) {
                if (V != "json" && V != "stable-json" && V != "text")
                  return false;
                Format = V;
                return true;
              },
              "output format: text | json | stable-json")
      .strOptional("run", RunFn, "main", "execute a function afterwards")
      .strOpt("trace", TraceFile, "write a Chrome trace-event JSON")
      .unsignedOpt("trace-cap", TraceCap, "per-thread trace buffer cap")
      .flag("profile", Profile, true, "print the proof-search profile")
      .flag("deterministic-trace", DetTrace, true,
            "byte-identical trace/profile output across --jobs")
      .custom("portfolio",
              [&Portfolio](const std::string &V) {
                return pure::parsePortfolioMode(V, Portfolio);
              },
              "pure-solver dispatch: on | off | race")
      .version();

  std::vector<std::string> Pos;
  switch (P.parse(argc, argv, Pos)) {
  case opts::ParseResult::Version:
    printf("%s\n", versionString());
    return 0;
  case opts::ParseResult::Error:
    fprintf(stderr, "error: unknown or malformed option '%s'\n%s\n",
            P.error().c_str(), P.usage().c_str());
    return 2;
  case opts::ParseResult::Ok:
    break;
  }
  if (!Pos.empty()) {
    Path = Pos.front();
    Functions.assign(Pos.begin() + 1, Pos.end());
  }
  if (!ConnectSock.empty())
    return runClient(ConnectSock); // the daemon owns the file list
  if (Path.empty()) {
    fprintf(stderr, "%s\n", P.usage().c_str());
    return 2;
  }

  // The session is created here (not inside the checker) so the frontend
  // spans land in the same trace as the verification run.
  std::unique_ptr<trace::TraceSession> TS;
  if (!TraceFile.empty() || Profile)
    TS = std::make_unique<trace::TraceSession>(DetTrace, TraceCap);
  trace::SessionScope TraceScope(TS.get());

  std::ifstream In(Path);
  if (!In) {
    fprintf(stderr, "error: cannot open '%s'\n", Path.c_str());
    return 2;
  }
  std::stringstream SS;
  SS << In.rdbuf();
  std::string Source = SS.str();

  DiagnosticEngine Diags;
  auto AP = front::compileSource(Source, Diags);
  if (!AP) {
    fprintf(stderr, "%s", Diags.render(Source).c_str());
    return 1;
  }
  refinedc::Checker Checker(*AP, Diags);
  if (!Checker.buildEnv()) {
    fprintf(stderr, "%s", Diags.render(Source).c_str());
    return 1;
  }

  if (Functions.empty())
    for (const auto &[Name, Spec] : Checker.env().FnSpecs)
      if (AP->Prog.function(Name) && AP->Fns.count(Name) &&
          AP->Fns.at(Name).HasBody)
        Functions.push_back(Name);

  refinedc::VerifyOptions Opts;
  Opts.Recheck = Recheck;
  Opts.Jobs = Jobs;
  Opts.CacheDir = CacheDir;
  Opts.SharedDir = SharedDir;
  Opts.NoCache = NoCache;
  Opts.Trace = TS.get();
  Opts.Profile = Profile;
  Opts.Portfolio = Portfolio;
  Opts.DeterministicTrace = DetTrace;
  refinedc::ProgramResult PR = Checker.verifyFunctions(Functions, Opts);

  // Attribute diagnostics to the input file, exactly as the daemon
  // attributes them to the watched document: the entries of the JSON
  // "diagnostics" array below are byte-identical to the `diagnostic`
  // objects of verifyd's events for the same failure.
  for (refinedc::FnResult &R : PR.Fns)
    for (rcc::Diagnostic &Dg : R.Diags)
      if (Dg.File.empty())
        Dg.File = Path;

  bool AllOk = PR.allVerified() && PR.allRechecksOk();

  // The run happens before any output so JSON mode can report it: the run
  // outcome used to be swallowed under --format=json while still flipping
  // the exit code — a silent failure. The JSON carries a `run` object with
  // status, return value, and message; text mode keeps its `[run ]` line
  // after the per-function results, as before.
  std::string RunJson;
  bool RunOk = true;
  long long RunRet = 0;
  std::string RunMsg;
  if (!RunFn.empty()) {
    caesium::Machine M(AP->Prog);
    caesium::ExecResult E = M.run(RunFn, {});
    RunOk = E.ok();
    RunRet = E.MainRet.isInt() ? (long long)E.MainRet.asSigned() : 0LL;
    RunMsg = E.Message;
    RunJson = "\"run\": {\"fn\": " + jsonQuote(RunFn) +
              ", \"status\": " + (RunOk ? "\"ok\"" : "\"fail\"");
    if (RunOk)
      RunJson += ", \"ret\": " + std::to_string(RunRet);
    else
      RunJson += ", \"message\": " + jsonQuote(RunMsg);
    RunJson += "}";
    if (!RunOk)
      AllOk = false;
  }

  bool Json = Format != "text";
  if (Format == "stable-json") {
    printf("%s", PR.toStableJson().c_str());
  } else if (Format == "json") {
    printf("%s", PR.toJson(RunJson).c_str());
  } else {
    for (const refinedc::FnResult &R : PR.Fns) {
      if (!R.Verified) {
        printf("[FAIL] %s\n%s\n", R.Name.c_str(),
               R.renderError(Source).c_str());
        continue;
      }
      std::string Note;
      if (R.Rechecked)
        Note = R.RecheckOk ? ", derivation re-checked" : ", RE-CHECK FAILED";
      printf("[ ok ] %s%s%s\n", R.Name.c_str(),
             R.Trusted ? " (trusted)" : "", Note.c_str());
      if (Stats)
        printf("       %u rule applications (%u distinct), %u evars, "
               "side conditions %u auto / %u manual\n",
               R.Stats.RuleApps, (unsigned)R.Stats.RulesUsed.size(),
               R.EvarsInstantiated, R.Stats.SideCondAuto,
               R.Stats.SideCondManual);
    }
    if (!CacheDir.empty() && !NoCache)
      printf("[cache] %u hit%s (l2 %u, replayed %u), %u re-verified\n",
             PR.CacheHits, PR.CacheHits == 1 ? "" : "s", PR.L2Hits,
             PR.ReplayedHits, PR.CacheMisses);
    if (!RunFn.empty()) {
      if (RunOk)
        printf("[run ] %s() -> %lld\n", RunFn.c_str(), RunRet);
      else
        printf("[run ] %s() FAILED: %s\n", RunFn.c_str(), RunMsg.c_str());
    }
  }

  // In JSON mode stdout must stay machine-parseable; the human-readable
  // profile goes to stderr instead.
  if (Profile)
    fprintf(Json ? stderr : stdout, "%s", PR.ProfileReport.c_str());
  if (TS && !TraceFile.empty()) {
    std::string Err;
    if (!trace::writeChromeTrace(*TS, TraceFile, &Err)) {
      fprintf(stderr, "error: %s\n", Err.c_str());
      return 2;
    }
    if (!Json)
      printf("[trace] wrote %zu events to %s\n", TS->numEvents(),
             TraceFile.c_str());
  }
  return AllOk ? 0 : 1;
}
