//===- verify_tool.cpp - A command-line RefinedC++ verifier ---------------===//
//
// Part of RefinedC++, a C++ reproduction of the RefinedC verifier (PLDI'21).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The downstream-user tool: `verify_tool file.c [function...]` verifies the
/// named functions (default: every function carrying rc:: annotations) and
/// prints per-function results with the paper's error-message format on
/// failure. Exit code 0 iff everything verified. Flags:
///
///   --stats        print per-function rule/side-condition statistics
///   --no-recheck   skip the independent derivation replay (also downgrades
///                  persistent-cache hits to content-hash trust)
///   --jobs=N       run N verification jobs concurrently (0 = all cores)
///   --cache-dir=D  persist verification results under D and reuse them on
///                  later runs (entries are replayed through the proof
///                  checker before being trusted; see DESIGN.md)
///   --no-cache     bypass the result store entirely
///   --format=json  print the ProgramResult as JSON instead of text
///   --run[=fn]     additionally execute `fn` (default main) afterwards
///   --trace=FILE   write a Chrome trace-event JSON of the whole pipeline
///                  (load in chrome://tracing or https://ui.perfetto.dev)
///   --trace-cap=N  cap each thread's trace buffer at N events (ring
///                  truncation; dropped events are counted in the metrics)
///   --profile      print the proof-search profile report (top rules by
///                  cumulative/self time, goal kinds, solver stats)
///   --deterministic-trace  make trace/profile output byte-identical across
///                  --jobs values (stable lanes, ordinal timestamps)
///   --version      print the version and exit
///
/// Unknown `--` flags are a usage error (exit 2), so a typo cannot silently
/// verify with the wrong configuration.
///
//===----------------------------------------------------------------------===//

#include "caesium/Interp.h"
#include "frontend/Frontend.h"
#include "refinedc/Checker.h"
#include "support/Util.h"
#include "trace/Export.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>

using namespace rcc;

static int usage(const char *Bad = nullptr) {
  if (Bad)
    fprintf(stderr, "error: unknown or malformed option '%s'\n", Bad);
  fprintf(stderr,
          "usage: verify_tool [--stats] [--no-recheck] [--jobs=N] "
          "[--cache-dir=DIR] [--no-cache] [--format=json] [--run[=fn]] "
          "[--trace=FILE] [--trace-cap=N] [--profile] "
          "[--deterministic-trace] [--version] <file.c> [function...]\n");
  return 2;
}

/// Strict decimal parse for flag values; rejects empty, signs, and trailing
/// garbage (`--jobs=4x` must not silently mean 4).
static bool parseUnsigned(const std::string &S, unsigned &Out) {
  if (S.empty())
    return false;
  unsigned long long V = 0;
  for (char C : S) {
    if (C < '0' || C > '9')
      return false;
    V = V * 10 + static_cast<unsigned>(C - '0');
    if (V > 0xffffffffULL)
      return false;
  }
  Out = static_cast<unsigned>(V);
  return true;
}

int main(int argc, char **argv) {
  std::string Path;
  std::vector<std::string> Functions;
  bool Stats = false, Recheck = true, Json = false;
  unsigned Jobs = 1, TraceCap = 0;
  std::string RunFn;
  std::string TraceFile;
  std::string CacheDir;
  bool NoCache = false;
  bool Profile = false, DetTrace = false;

  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    if (A == "--stats")
      Stats = true;
    else if (A == "--no-recheck")
      Recheck = false;
    else if (A.rfind("--jobs=", 0) == 0) {
      if (!parseUnsigned(A.substr(7), Jobs))
        return usage(argv[I]);
    } else if (A.rfind("--cache-dir=", 0) == 0) {
      CacheDir = A.substr(12);
      if (CacheDir.empty())
        return usage(argv[I]);
    } else if (A == "--no-cache")
      NoCache = true;
    else if (A == "--format=json")
      Json = true;
    else if (A == "--run")
      RunFn = "main";
    else if (A.rfind("--run=", 0) == 0)
      RunFn = A.substr(6);
    else if (A.rfind("--trace=", 0) == 0)
      TraceFile = A.substr(8);
    else if (A.rfind("--trace-cap=", 0) == 0) {
      if (!parseUnsigned(A.substr(12), TraceCap))
        return usage(argv[I]);
    } else if (A == "--profile")
      Profile = true;
    else if (A == "--deterministic-trace")
      DetTrace = true;
    else if (A == "--version") {
      printf("%s\n", versionString());
      return 0;
    } else if (A.rfind("--", 0) == 0) {
      return usage(argv[I]);
    } else if (Path.empty())
      Path = A;
    else
      Functions.push_back(A);
  }
  if (Path.empty())
    return usage();

  // The session is created here (not inside the checker) so the frontend
  // spans land in the same trace as the verification run.
  std::unique_ptr<trace::TraceSession> TS;
  if (!TraceFile.empty() || Profile)
    TS = std::make_unique<trace::TraceSession>(DetTrace, TraceCap);
  trace::SessionScope TraceScope(TS.get());

  std::ifstream In(Path);
  if (!In) {
    fprintf(stderr, "error: cannot open '%s'\n", Path.c_str());
    return 2;
  }
  std::stringstream SS;
  SS << In.rdbuf();
  std::string Source = SS.str();

  DiagnosticEngine Diags;
  auto AP = front::compileSource(Source, Diags);
  if (!AP) {
    fprintf(stderr, "%s", Diags.render(Source).c_str());
    return 1;
  }
  refinedc::Checker Checker(*AP, Diags);
  if (!Checker.buildEnv()) {
    fprintf(stderr, "%s", Diags.render(Source).c_str());
    return 1;
  }

  if (Functions.empty())
    for (const auto &[Name, Spec] : Checker.env().FnSpecs)
      if (AP->Prog.function(Name) && AP->Fns.count(Name) &&
          AP->Fns.at(Name).HasBody)
        Functions.push_back(Name);

  refinedc::VerifyOptions Opts;
  Opts.Recheck = Recheck;
  Opts.Jobs = Jobs;
  Opts.CacheDir = CacheDir;
  Opts.NoCache = NoCache;
  Opts.Trace = TS.get();
  Opts.Profile = Profile;
  refinedc::ProgramResult PR = Checker.verifyFunctions(Functions, Opts);

  bool AllOk = PR.allVerified() && PR.allRechecksOk();
  if (Json) {
    printf("%s", PR.toJson().c_str());
  } else {
    for (const refinedc::FnResult &R : PR.Fns) {
      if (!R.Verified) {
        printf("[FAIL] %s\n%s\n", R.Name.c_str(),
               R.renderError(Source).c_str());
        continue;
      }
      std::string Note;
      if (R.Rechecked)
        Note = R.RecheckOk ? ", derivation re-checked" : ", RE-CHECK FAILED";
      printf("[ ok ] %s%s%s\n", R.Name.c_str(),
             R.Trusted ? " (trusted)" : "", Note.c_str());
      if (Stats)
        printf("       %u rule applications (%u distinct), %u evars, "
               "side conditions %u auto / %u manual\n",
               R.Stats.RuleApps, (unsigned)R.Stats.RulesUsed.size(),
               R.EvarsInstantiated, R.Stats.SideCondAuto,
               R.Stats.SideCondManual);
    }
    if (!CacheDir.empty() && !NoCache)
      printf("[cache] %u hit%s (l2 %u, replayed %u), %u re-verified\n",
             PR.CacheHits, PR.CacheHits == 1 ? "" : "s", PR.L2Hits,
             PR.ReplayedHits, PR.CacheMisses);
  }

  if (!RunFn.empty()) {
    caesium::Machine M(AP->Prog);
    caesium::ExecResult E = M.run(RunFn, {});
    if (E.ok()) {
      if (!Json)
        printf("[run ] %s() -> %lld\n", RunFn.c_str(),
               E.MainRet.isInt() ? (long long)E.MainRet.asSigned() : 0LL);
    } else {
      if (!Json)
        printf("[run ] %s() FAILED: %s\n", RunFn.c_str(), E.Message.c_str());
      AllOk = false;
    }
  }

  // In JSON mode stdout must stay machine-parseable; the human-readable
  // profile goes to stderr instead.
  if (Profile)
    fprintf(Json ? stderr : stdout, "%s", PR.ProfileReport.c_str());
  if (TS && !TraceFile.empty()) {
    std::string Err;
    if (!trace::writeChromeTrace(*TS, TraceFile, &Err)) {
      fprintf(stderr, "error: %s\n", Err.c_str());
      return 2;
    }
    if (!Json)
      printf("[trace] wrote %zu events to %s\n", TS->numEvents(),
             TraceFile.c_str());
  }
  return AllOk ? 0 : 1;
}
