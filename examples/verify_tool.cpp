//===- verify_tool.cpp - A command-line RefinedC++ verifier ---------------===//
//
// Part of RefinedC++, a C++ reproduction of the RefinedC verifier (PLDI'21).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The downstream-user tool: `verify_tool file.c [function...]` verifies the
/// named functions (default: every function carrying rc:: annotations) and
/// prints per-function results with the paper's error-message format on
/// failure. Exit code 0 iff everything verified. Flags:
///
///   --stats        print per-function rule/side-condition statistics
///   --no-recheck   skip the independent derivation replay
///   --jobs=N       run N verification jobs concurrently (0 = all cores)
///   --format=json  print the ProgramResult as JSON instead of text
///   --run[=fn]     additionally execute `fn` (default main) afterwards
///
//===----------------------------------------------------------------------===//

#include "caesium/Interp.h"
#include "frontend/Frontend.h"
#include "refinedc/Checker.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

using namespace rcc;

int main(int argc, char **argv) {
  std::string Path;
  std::vector<std::string> Functions;
  bool Stats = false, Recheck = true, Json = false;
  unsigned Jobs = 1;
  std::string RunFn;

  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    if (A == "--stats")
      Stats = true;
    else if (A == "--no-recheck")
      Recheck = false;
    else if (A.rfind("--jobs=", 0) == 0)
      Jobs = static_cast<unsigned>(atoi(A.c_str() + 7));
    else if (A == "--format=json")
      Json = true;
    else if (A == "--run")
      RunFn = "main";
    else if (A.rfind("--run=", 0) == 0)
      RunFn = A.substr(6);
    else if (Path.empty())
      Path = A;
    else
      Functions.push_back(A);
  }
  if (Path.empty()) {
    fprintf(stderr,
            "usage: verify_tool [--stats] [--no-recheck] [--jobs=N] "
            "[--format=json] [--run[=fn]] <file.c> [function...]\n");
    return 2;
  }

  std::ifstream In(Path);
  if (!In) {
    fprintf(stderr, "error: cannot open '%s'\n", Path.c_str());
    return 2;
  }
  std::stringstream SS;
  SS << In.rdbuf();
  std::string Source = SS.str();

  DiagnosticEngine Diags;
  auto AP = front::compileSource(Source, Diags);
  if (!AP) {
    fprintf(stderr, "%s", Diags.render(Source).c_str());
    return 1;
  }
  refinedc::Checker Checker(*AP, Diags);
  if (!Checker.buildEnv()) {
    fprintf(stderr, "%s", Diags.render(Source).c_str());
    return 1;
  }

  if (Functions.empty())
    for (const auto &[Name, Spec] : Checker.env().FnSpecs)
      if (AP->Prog.function(Name) && AP->Fns.count(Name) &&
          AP->Fns.at(Name).HasBody)
        Functions.push_back(Name);

  refinedc::VerifyOptions Opts;
  Opts.Recheck = Recheck;
  Opts.Jobs = Jobs;
  refinedc::ProgramResult PR = Checker.verifyFunctions(Functions, Opts);

  bool AllOk = PR.allVerified() && PR.allRechecksOk();
  if (Json) {
    printf("%s", PR.toJson().c_str());
  } else {
    for (const refinedc::FnResult &R : PR.Fns) {
      if (!R.Verified) {
        printf("[FAIL] %s\n%s\n", R.Name.c_str(),
               R.renderError(Source).c_str());
        continue;
      }
      std::string Note;
      if (R.Rechecked)
        Note = R.RecheckOk ? ", derivation re-checked" : ", RE-CHECK FAILED";
      printf("[ ok ] %s%s%s\n", R.Name.c_str(),
             R.Trusted ? " (trusted)" : "", Note.c_str());
      if (Stats)
        printf("       %u rule applications (%u distinct), %u evars, "
               "side conditions %u auto / %u manual\n",
               R.Stats.RuleApps, (unsigned)R.Stats.RulesUsed.size(),
               R.EvarsInstantiated, R.Stats.SideCondAuto,
               R.Stats.SideCondManual);
    }
  }

  if (!RunFn.empty()) {
    caesium::Machine M(AP->Prog);
    caesium::ExecResult E = M.run(RunFn, {});
    if (E.ok()) {
      if (!Json)
        printf("[run ] %s() -> %lld\n", RunFn.c_str(),
               E.MainRet.isInt() ? (long long)E.MainRet.asSigned() : 0LL);
    } else {
      if (!Json)
        printf("[run ] %s() FAILED: %s\n", RunFn.c_str(), E.Message.c_str());
      AllOk = false;
    }
  }
  return AllOk ? 0 : 1;
}
