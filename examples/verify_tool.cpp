//===- verify_tool.cpp - A command-line RefinedC++ verifier ---------------===//
//
// Part of RefinedC++, a C++ reproduction of the RefinedC verifier (PLDI'21).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The downstream-user tool: `verify_tool file.c [function...]` verifies the
/// named functions (default: every function carrying rc:: annotations) and
/// prints per-function results with the paper's error-message format on
/// failure. Exit code 0 iff everything verified. Flags:
///
///   --stats        print per-function rule/side-condition statistics
///   --no-recheck   skip the independent derivation replay
///   --run[=fn]     additionally execute `fn` (default main) afterwards
///
//===----------------------------------------------------------------------===//

#include "caesium/Interp.h"
#include "frontend/Frontend.h"
#include "refinedc/Checker.h"
#include "refinedc/ProofChecker.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

using namespace rcc;

int main(int argc, char **argv) {
  std::string Path;
  std::vector<std::string> Functions;
  bool Stats = false, Recheck = true;
  std::string RunFn;

  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    if (A == "--stats")
      Stats = true;
    else if (A == "--no-recheck")
      Recheck = false;
    else if (A == "--run")
      RunFn = "main";
    else if (A.rfind("--run=", 0) == 0)
      RunFn = A.substr(6);
    else if (Path.empty())
      Path = A;
    else
      Functions.push_back(A);
  }
  if (Path.empty()) {
    fprintf(stderr,
            "usage: verify_tool [--stats] [--no-recheck] [--run[=fn]] "
            "<file.c> [function...]\n");
    return 2;
  }

  std::ifstream In(Path);
  if (!In) {
    fprintf(stderr, "error: cannot open '%s'\n", Path.c_str());
    return 2;
  }
  std::stringstream SS;
  SS << In.rdbuf();
  std::string Source = SS.str();

  DiagnosticEngine Diags;
  auto AP = front::compileSource(Source, Diags);
  if (!AP) {
    fprintf(stderr, "%s", Diags.render(Source).c_str());
    return 1;
  }
  refinedc::Checker Checker(*AP, Diags);
  if (!Checker.buildEnv()) {
    fprintf(stderr, "%s", Diags.render(Source).c_str());
    return 1;
  }

  if (Functions.empty())
    for (const auto &[Name, Spec] : Checker.env().FnSpecs)
      if (AP->Prog.function(Name) && AP->Fns.count(Name) &&
          AP->Fns.at(Name).HasBody)
        Functions.push_back(Name);

  bool AllOk = true;
  for (const std::string &Fn : Functions) {
    refinedc::FnResult R = Checker.verifyFunction(Fn);
    if (!R.Verified) {
      AllOk = false;
      printf("[FAIL] %s\n%s\n", Fn.c_str(),
             R.renderError(Source).c_str());
      continue;
    }
    std::string Note;
    if (Recheck) {
      std::vector<pure::Lemma> Lemmas;
      auto It = Checker.env().FnSpecs.find(Fn);
      if (It != Checker.env().FnSpecs.end())
        for (const auto &[LN, LP, LL] : It->second->Lemmas)
          Lemmas.push_back({LN, LP, LL});
      refinedc::ProofChecker PC(Checker.rules());
      refinedc::ProofCheckResult P = PC.check(R.Deriv, Lemmas);
      Note = P.Ok ? ", derivation re-checked" : ", RE-CHECK FAILED";
      if (!P.Ok)
        AllOk = false;
    }
    printf("[ ok ] %s%s%s\n", Fn.c_str(), R.Trusted ? " (trusted)" : "",
           Note.c_str());
    if (Stats)
      printf("       %u rule applications (%u distinct), %u evars, "
             "side conditions %u auto / %u manual\n",
             R.Stats.RuleApps, (unsigned)R.Stats.RulesUsed.size(),
             R.EvarsInstantiated, R.Stats.SideCondAuto,
             R.Stats.SideCondManual);
  }

  if (!RunFn.empty()) {
    caesium::Machine M(AP->Prog);
    caesium::ExecResult E = M.run(RunFn, {});
    if (E.ok())
      printf("[run ] %s() -> %lld\n", RunFn.c_str(),
             E.MainRet.isInt() ? (long long)E.MainRet.asSigned() : 0LL);
    else {
      printf("[run ] %s() FAILED: %s\n", RunFn.c_str(), E.Message.c_str());
      AllOk = false;
    }
  }
  return AllOk ? 0 : 1;
}
