//===- rcc_lsp.cpp - The RefinedC++ language server -----------------------===//
//
// Part of RefinedC++, a C++ reproduction of the RefinedC verifier (PLDI'21).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// `rcc-lsp` speaks the Language Server Protocol over stdio: editors open
/// annotated C files, the server verifies them through the daemon's
/// workspace (sharing one in-memory result tier across saves, so a save
/// only re-runs proof search for the functions whose verification problem
/// changed), and failures come back as `publishDiagnostics` with real
/// source ranges. See README.md, "Editor integration". Flags:
///
///   --cache-dir=DIR      persist results under DIR (warm restarts)
///   --cache-max-bytes=N  GC budget for DIR
///   --jobs=N             concurrent verification jobs (0 = all cores)
///   --no-recheck         skip the independent derivation replay
///   --version            print the version and exit
///
/// Exit code 0 iff the client performed the shutdown/exit handshake in
/// order (LSP: `exit` before `shutdown` must exit with 1).
///
//===----------------------------------------------------------------------===//

#include "lsp/LspServer.h"
#include "support/Options.h"
#include "support/Util.h"

#include <cstdio>
#include <iostream>
#include <string>

using namespace rcc;

int main(int argc, char **argv) {
  lsp::LspOptions O;

  opts::OptionParser P("rcc-lsp", "");
  P.strOpt("cache-dir", O.CacheDir, "persistent result store directory")
      .u64Opt("cache-max-bytes", O.CacheMaxBytes, "GC budget for the cache")
      .unsignedOpt("jobs", O.Jobs, "concurrent verification jobs (0 = cores)")
      .flag("no-recheck", O.Recheck, false,
            "skip the independent derivation replay")
      .version();

  std::vector<std::string> Pos;
  switch (P.parse(argc, argv, Pos)) {
  case opts::ParseResult::Version:
    printf("%s\n", versionString());
    return 0;
  case opts::ParseResult::Error:
    fprintf(stderr, "error: unknown or malformed option '%s'\n%s\n",
            P.error().c_str(), P.usage().c_str());
    return 2;
  case opts::ParseResult::Ok:
    break;
  }
  if (!Pos.empty()) {
    fprintf(stderr, "error: rcc-lsp takes no positional arguments\n%s\n",
            P.usage().c_str());
    return 2;
  }

  // stdout carries framed protocol bytes only; never mix in C stdio.
  std::ios::sync_with_stdio(false);
  lsp::LspServer Server(std::move(O));
  return Server.run(std::cin, std::cout);
}
