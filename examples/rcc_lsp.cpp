//===- rcc_lsp.cpp - The RefinedC++ language server -----------------------===//
//
// Part of RefinedC++, a C++ reproduction of the RefinedC verifier (PLDI'21).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// `rcc-lsp` speaks the Language Server Protocol over stdio: editors open
/// annotated C files, the server verifies them through the daemon's
/// workspace (sharing one in-memory result tier across saves, so a save
/// only re-runs proof search for the functions whose verification problem
/// changed), and failures come back as `publishDiagnostics` with real
/// source ranges. See README.md, "Editor integration". Flags:
///
///   --cache-dir=DIR      persist results under DIR (warm restarts)
///   --cache-max-bytes=N  GC budget for DIR
///   --jobs=N             concurrent verification jobs (0 = all cores)
///   --no-recheck         skip the independent derivation replay
///   --version            print the version and exit
///
/// Exit code 0 iff the client performed the shutdown/exit handshake in
/// order (LSP: `exit` before `shutdown` must exit with 1).
///
//===----------------------------------------------------------------------===//

#include "lsp/LspServer.h"
#include "support/Util.h"

#include <cstdio>
#include <iostream>
#include <string>

using namespace rcc;

static int usage(const char *Bad = nullptr) {
  if (Bad)
    fprintf(stderr, "error: unknown or malformed option '%s'\n", Bad);
  fprintf(stderr, "usage: rcc-lsp [--cache-dir=DIR] [--cache-max-bytes=N] "
                  "[--jobs=N] [--no-recheck] [--version]\n");
  return 2;
}

static bool parseU64(const std::string &S, uint64_t &Out) {
  if (S.empty())
    return false;
  uint64_t V = 0;
  for (char C : S) {
    if (C < '0' || C > '9')
      return false;
    if (V > (UINT64_MAX - static_cast<uint64_t>(C - '0')) / 10)
      return false;
    V = V * 10 + static_cast<uint64_t>(C - '0');
  }
  Out = V;
  return true;
}

int main(int argc, char **argv) {
  lsp::LspOptions O;

  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    if (A.rfind("--cache-dir=", 0) == 0) {
      O.CacheDir = A.substr(12);
      if (O.CacheDir.empty())
        return usage(argv[I]);
    } else if (A.rfind("--cache-max-bytes=", 0) == 0) {
      if (!parseU64(A.substr(18), O.CacheMaxBytes))
        return usage(argv[I]);
    } else if (A.rfind("--jobs=", 0) == 0) {
      uint64_t V;
      if (!parseU64(A.substr(7), V) || V > 0xffffffffULL)
        return usage(argv[I]);
      O.Jobs = static_cast<unsigned>(V);
    } else if (A == "--no-recheck") {
      O.Recheck = false;
    } else if (A == "--version") {
      printf("%s\n", versionString());
      return 0;
    } else {
      return usage(argv[I]);
    }
  }

  // stdout carries framed protocol bytes only; never mix in C stdio.
  std::ios::sync_with_stdio(false);
  lsp::LspServer Server(std::move(O));
  return Server.run(std::cin, std::cout);
}
