//===- concurrent_demo.cpp - Fine-grained concurrency (Section 6) ---------===//
//
// Part of RefinedC++, a C++ reproduction of the RefinedC verifier (PLDI'21).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The spinlock case study (class #6) end to end: verification of
/// acquire/release against the atomicbool type (CAS-BOOL, Figure 6),
/// execution under many randomized thread interleavings, and — as a
/// contrast — a deliberately broken variant without the lock, which (a) the
/// verifier rejects and (b) the interpreter's race detector catches as
/// undefined behaviour on some schedule.
///
//===----------------------------------------------------------------------===//

#include "caesium/Interp.h"
#include "casestudies/CaseStudies.h"
#include "frontend/Frontend.h"
#include "refinedc/Checker.h"

#include <cstdio>

using namespace rcc;

static const char *RacySource = R"(
size_t counter;

// No lock: the counter is written without synchronization.
[[rc::parameters()]]
void racy_inc(void) {
  counter = counter + 1;
}

void rworker(void* unused) { racy_inc(); }

int main() {
  counter = 0;
  int t1 = rc_spawn(rworker, NULL);
  int t2 = rc_spawn(rworker, NULL);
  rc_join(t1);
  rc_join(t2);
  return (int)counter;
}
)";

int main() {
  // --- The verified spinlock case study ---
  const casestudies::CaseStudy *CS = casestudies::caseStudy("spinlock");
  DiagnosticEngine Diags;
  auto AP = front::compileSource(CS->Source, Diags);
  if (!AP) {
    printf("%s", Diags.render(CS->Source).c_str());
    return 1;
  }
  refinedc::Checker Checker(*AP, Diags);
  if (!Checker.buildEnv())
    return 1;
  for (const char *Fn : {"spin_lock", "spin_unlock", "shared_inc"}) {
    refinedc::FnResult R = Checker.verifyFunction(Fn, {});
    if (!R.Verified) {
      printf("%s", R.renderError(CS->Source).c_str());
      return 1;
    }
    printf("verified `%s` (%u rule applications)\n", Fn, R.Stats.RuleApps);
  }

  unsigned Schedules = 64;
  for (uint64_t Seed = 1; Seed <= Schedules; ++Seed) {
    caesium::Machine M(AP->Prog, Seed);
    caesium::ExecResult E = M.run("main", {});
    if (!E.ok()) {
      printf("schedule %llu failed: %s\n", (unsigned long long)Seed,
             E.Message.c_str());
      return 1;
    }
    if (E.MainRet.asSigned() != 4) {
      printf("schedule %llu lost an update!\n", (unsigned long long)Seed);
      return 1;
    }
  }
  printf("executed the two-worker counter under %u schedules: always 4\n",
         Schedules);

  // --- The racy contrast ---
  DiagnosticEngine D2;
  auto AP2 = front::compileSource(RacySource, D2);
  if (!AP2)
    return 1;
  refinedc::Checker C2(*AP2, D2);
  if (!C2.buildEnv())
    return 1;
  refinedc::FnResult R2 = C2.verifyFunction("racy_inc", {});
  printf("\nracy_inc without a lock: verification %s (as it must: the "
         "counter is not owned)\n",
         R2.Verified ? "UNEXPECTEDLY SUCCEEDED" : "rejected");

  bool SawRace = false;
  for (uint64_t Seed = 1; Seed <= 64 && !SawRace; ++Seed) {
    caesium::Machine M(AP2->Prog, Seed);
    caesium::ExecResult E = M.run("main", {});
    if (!E.ok() && E.Message.find("data race") != std::string::npos)
      SawRace = true;
  }
  printf("interpreter race detector on the racy variant: %s\n",
         SawRace ? "caught a data race" : "no race on tried schedules");
  return (!R2.Verified && SawRace) ? 0 : 1;
}
