//===- verifyd.cpp - The verification daemon --------------------------------===//
//
// Part of RefinedC++, a C++ reproduction of the RefinedC verifier (PLDI'21).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// `verifyd file.c` is a long-lived verification server: it loads the file,
/// verifies every annotated function, then watches the file and re-verifies
/// on save — and because every Checker session of the daemon shares one
/// in-memory result tier (plus an optional disk tier), a save only re-runs
/// proof search for the functions whose verification problem actually
/// changed. Several files form a workspace sharing the same tiers: a save
/// re-verifies only the changed functions of the saved file. Diagnostics
/// are JSON lines (see DESIGN.md, "Verification daemon"). Flags:
///
///   --stdio            serve the protocol on stdin/stdout (default; used
///                      by tests and editor integrations)
///   --socket=PATH      serve on a Unix domain socket instead;
///                      `verify_tool --connect=PATH` is a thin client, and
///                      v2 clients upgrade with a `hello` handshake
///   --once             one cold-start verification, then exit (no watch)
///   --cache-dir=DIR    persist results under DIR: a daemon restart serves
///                      unchanged functions from the replayed disk tier
///   --cache-max-bytes=N  GC budget for DIR (LRU by entry mtime; enforced
///                      after every revision and at shutdown)
///   --jobs=N           concurrent verification jobs per revision (0 = all
///                      cores)
///   --no-recheck       skip the independent derivation replay
///   --poll-ms=N        watch poll interval (default 200)
///   --trace=FILE       write a Chrome trace of the daemon's lifetime on
///                      clean shutdown (revision spans, daemon.* counters)
///   --version          print the version and exit
///
/// Fleet modes (DESIGN.md, "Fleet & protocol v2"):
///
///   --serve=SOCK       run as fleet *coordinator*: decompose the file into
///                      function jobs, serve them to workers over SOCK with
///                      work-stealing pull semantics, then assemble the
///                      final result through the shared store (replaying
///                      every L3 derivation before trusting it). Exits like
///                      verify_tool: 0 iff everything verified.
///   --worker           run as fleet *worker*: connect to --connect=SOCK,
///                      pull jobs, verify them against --shared-dir, stream
///                      results and trace spans back. Exit 0 on clean drain.
///   --connect=SOCK     (worker) the coordinator socket
///   --shared-dir=DIR   the shared L3 artifact store directory
///   --window=N         (coordinator) max jobs in flight per worker batch
///   --fleet-wait-ms=N  (coordinator) serving budget before assembling
///                      locally without the missing workers
///   --capacity=N       (worker) jobs requested per pull
///   --name=S           (worker) display name in handshakes and span flushes
///   --format=stable-json  (coordinator) print the schedule/topology-
///                      independent result JSON (byte-comparable against
///                      `verify_tool --format=stable-json` on the same file)
///   --deterministic-trace  (coordinator) zero wall times in the assembled
///                      result
///
/// Exit code 0 iff the last processed revision fully verified.
///
//===----------------------------------------------------------------------===//

#include "daemon/Daemon.h"
#include "fleet/Coordinator.h"
#include "fleet/Worker.h"
#include "support/Options.h"
#include "support/Util.h"
#include "trace/Export.h"

#include <cstdio>
#include <iostream>
#include <memory>
#include <string>

using namespace rcc;

int main(int argc, char **argv) {
  daemon::DaemonOptions O;
  std::string SockPath;
  std::string TraceFile;
  bool Once = false;
  bool Stdio = false;

  // Fleet-mode state.
  bool Worker = false;
  std::string ServeSock, ConnectSock, SharedDir, Name;
  std::string Format = "text";
  unsigned Window = 4, FleetWaitMs = 60000, Capacity = 2, SleepMsPerJob = 0;
  bool DetTrace = false;

  opts::OptionParser P("verifyd", "<file.c> [file2.c ...]");
  P.flag("stdio", Stdio, true, "serve the protocol on stdin/stdout")
      .strOpt("socket", SockPath, "serve on a Unix domain socket")
      .flag("once", Once, true, "one cold-start verification, then exit")
      .strOpt("cache-dir", O.CacheDir, "persistent result store directory")
      .u64Opt("cache-max-bytes", O.CacheMaxBytes, "GC budget for the cache")
      .unsignedOpt("jobs", O.Jobs, "concurrent verification jobs (0 = cores)")
      .flag("no-recheck", O.Recheck, false,
            "skip the independent derivation replay")
      .unsignedOpt("poll-ms", O.PollMs, "watch poll interval", 1, 60000)
      .strOpt("trace", TraceFile, "write a Chrome trace on clean shutdown")
      .strOpt("serve", ServeSock, "fleet coordinator on this socket")
      .flag("worker", Worker, true, "fleet worker mode")
      .strOpt("connect", ConnectSock, "(worker) coordinator socket")
      .strOpt("shared-dir", SharedDir, "shared L3 artifact store directory")
      .unsignedOpt("window", Window, "(coordinator) jobs in flight per batch",
                   1, 1024)
      .unsignedOpt("fleet-wait-ms", FleetWaitMs,
                   "(coordinator) serving budget in ms")
      .unsignedOpt("capacity", Capacity, "(worker) jobs per pull", 1, 1024)
      .strOpt("name", Name, "(worker) display name")
      .unsignedOpt("sleep-ms-per-job", SleepMsPerJob,
                   "(worker) test hook: delay before each job")
      .custom("format",
              [&Format](const std::string &V) {
                if (V != "json" && V != "stable-json" && V != "text")
                  return false;
                Format = V;
                return true;
              },
              "(coordinator) output format: text | json | stable-json")
      .flag("deterministic-trace", DetTrace, true,
            "(coordinator) zero wall times in the assembled result")
      .version();

  std::vector<std::string> Pos;
  switch (P.parse(argc, argv, Pos)) {
  case opts::ParseResult::Version:
    printf("%s\n", versionString());
    return 0;
  case opts::ParseResult::Error:
    fprintf(stderr, "error: unknown or malformed option '%s'\n%s\n",
            P.error().c_str(), P.usage().c_str());
    return 2;
  case opts::ParseResult::Ok:
    break;
  }
  if (Stdio)
    SockPath.clear();
  if (!Pos.empty()) {
    O.Path = Pos.front();
    O.Paths.assign(Pos.begin() + 1, Pos.end());
  }

  // --- Fleet worker: no workspace of its own; everything comes from the
  // coordinator's hello_ack.
  if (Worker) {
    if (ConnectSock.empty()) {
      fprintf(stderr, "error: --worker requires --connect=SOCK\n");
      return 2;
    }
    fleet::WorkerOptions WO;
    WO.Connect = ConnectSock;
    WO.Name = Name.empty() ? "worker" : Name;
    WO.Capacity = Capacity;
    WO.Jobs = O.Jobs;
    WO.SleepMsPerJob = SleepMsPerJob;
    return fleet::runWorker(WO);
  }

  // --- Fleet coordinator: one verification round over the fleet, then
  // exit with verify_tool semantics.
  if (!ServeSock.empty()) {
    if (O.Path.empty()) {
      fprintf(stderr, "%s\n", P.usage().c_str());
      return 2;
    }
    std::unique_ptr<trace::TraceSession> TS;
    if (!TraceFile.empty())
      TS = std::make_unique<trace::TraceSession>();
    fleet::FleetOptions FO;
    FO.SockPath = ServeSock;
    FO.File = O.Path;
    FO.SharedDir = SharedDir;
    FO.Jobs = O.Jobs;
    FO.Recheck = O.Recheck;
    FO.Window = Window;
    FO.WaitMs = FleetWaitMs;
    FO.DeterministicTrace = DetTrace;
    FO.Trace = TS.get();
    fleet::Coordinator C(FO);
    refinedc::ProgramResult PR;
    std::string Err;
    if (!C.run(PR, &Err)) {
      fprintf(stderr, "verifyd: %s\n", Err.c_str());
      return 2;
    }
    if (Format == "stable-json")
      printf("%s", PR.toStableJson().c_str());
    else if (Format == "json")
      printf("%s", PR.toJson().c_str());
    else {
      const fleet::FleetStats &S = C.stats();
      printf("[fleet] %zu functions, %u workers, %u jobs from workers, "
             "%u requeued, %u stolen, all_verified=%s\n",
             PR.Fns.size(), S.WorkersSeen, S.JobsCompleted, S.Requeued,
             S.Stolen, PR.allVerified() ? "true" : "false");
    }
    if (TS && !TraceFile.empty()) {
      std::string TErr;
      if (!trace::writeChromeTrace(*TS, TraceFile, &TErr))
        fprintf(stderr, "verifyd: %s\n", TErr.c_str());
    }
    return PR.allVerified() && PR.allRechecksOk() ? 0 : 1;
  }

  if (O.Path.empty()) {
    fprintf(stderr, "%s\n", P.usage().c_str());
    return 2;
  }

  std::unique_ptr<trace::TraceSession> TS;
  if (!TraceFile.empty())
    TS = std::make_unique<trace::TraceSession>();
  O.Trace = TS.get();

  daemon::Daemon::installSignalHandlers();
  daemon::Daemon D(O);

  int Ret;
  if (Once) {
    // One cold-start check; events still go to stdout as JSON lines.
    D.checkOnce(
        [](const std::string &L) {
          fputs(L.c_str(), stdout);
          fputc('\n', stdout);
          fflush(stdout);
        },
        /*Force=*/true);
    Ret = D.lastAllVerified() ? 0 : 1;
  } else if (!SockPath.empty()) {
    Ret = D.runSocket(SockPath);
  } else {
    Ret = D.runStdio(std::cin, std::cout);
  }

  // Clean shutdown flushes the trace last, after the final store GC.
  if (TS && !TraceFile.empty()) {
    std::string Err;
    if (!trace::writeChromeTrace(*TS, TraceFile, &Err))
      fprintf(stderr, "verifyd: %s\n", Err.c_str());
  }
  return Ret;
}
