//===- verifyd.cpp - The verification daemon --------------------------------===//
//
// Part of RefinedC++, a C++ reproduction of the RefinedC verifier (PLDI'21).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// `verifyd file.c` is a long-lived verification server: it loads the file,
/// verifies every annotated function, then watches the file and re-verifies
/// on save — and because every Checker session of the daemon shares one
/// in-memory result tier (plus an optional disk tier), a save only re-runs
/// proof search for the functions whose verification problem actually
/// changed. Several files form a workspace sharing the same tiers: a save
/// re-verifies only the changed functions of the saved file. Diagnostics
/// are JSON lines (see DESIGN.md, "Verification daemon"). Flags:
///
///   --stdio            serve the protocol on stdin/stdout (default; used
///                      by tests and editor integrations)
///   --socket=PATH      serve on a Unix domain socket instead;
///                      `verify_tool --connect=PATH` is a thin client
///   --once             one cold-start verification, then exit (no watch)
///   --cache-dir=DIR    persist results under DIR: a daemon restart serves
///                      unchanged functions from the replayed disk tier
///   --cache-max-bytes=N  GC budget for DIR (LRU by entry mtime; enforced
///                      after every revision and at shutdown)
///   --jobs=N           concurrent verification jobs per revision (0 = all
///                      cores)
///   --no-recheck       skip the independent derivation replay
///   --poll-ms=N        watch poll interval (default 200)
///   --trace=FILE       write a Chrome trace of the daemon's lifetime on
///                      clean shutdown (revision spans, daemon.* counters)
///   --version          print the version and exit
///
/// Exit code 0 iff the last processed revision fully verified.
///
//===----------------------------------------------------------------------===//

#include "daemon/Daemon.h"
#include "support/Util.h"
#include "trace/Export.h"

#include <cstdio>
#include <iostream>
#include <memory>
#include <string>

using namespace rcc;

static int usage(const char *Bad = nullptr) {
  if (Bad)
    fprintf(stderr, "error: unknown or malformed option '%s'\n", Bad);
  fprintf(stderr,
          "usage: verifyd [--stdio | --socket=PATH] [--once] "
          "[--cache-dir=DIR] [--cache-max-bytes=N] [--jobs=N] "
          "[--no-recheck] [--poll-ms=N] [--trace=FILE] [--version] "
          "<file.c> [file2.c ...]\n");
  return 2;
}

static bool parseU64(const std::string &S, uint64_t &Out) {
  if (S.empty())
    return false;
  uint64_t V = 0;
  for (char C : S) {
    if (C < '0' || C > '9')
      return false;
    if (V > (UINT64_MAX - static_cast<uint64_t>(C - '0')) / 10)
      return false;
    V = V * 10 + static_cast<uint64_t>(C - '0');
  }
  Out = V;
  return true;
}

int main(int argc, char **argv) {
  daemon::DaemonOptions O;
  std::string SockPath;
  std::string TraceFile;
  bool Once = false;

  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    if (A == "--stdio")
      SockPath.clear();
    else if (A.rfind("--socket=", 0) == 0) {
      SockPath = A.substr(9);
      if (SockPath.empty())
        return usage(argv[I]);
    } else if (A == "--once")
      Once = true;
    else if (A.rfind("--cache-dir=", 0) == 0) {
      O.CacheDir = A.substr(12);
      if (O.CacheDir.empty())
        return usage(argv[I]);
    } else if (A.rfind("--cache-max-bytes=", 0) == 0) {
      if (!parseU64(A.substr(18), O.CacheMaxBytes))
        return usage(argv[I]);
    } else if (A.rfind("--jobs=", 0) == 0) {
      uint64_t V;
      if (!parseU64(A.substr(7), V) || V > 0xffffffffULL)
        return usage(argv[I]);
      O.Jobs = static_cast<unsigned>(V);
    } else if (A == "--no-recheck")
      O.Recheck = false;
    else if (A.rfind("--poll-ms=", 0) == 0) {
      uint64_t V;
      if (!parseU64(A.substr(10), V) || V == 0 || V > 60000)
        return usage(argv[I]);
      O.PollMs = static_cast<unsigned>(V);
    } else if (A.rfind("--trace=", 0) == 0)
      TraceFile = A.substr(8);
    else if (A == "--version") {
      printf("%s\n", versionString());
      return 0;
    } else if (A.rfind("--", 0) == 0)
      return usage(argv[I]);
    else if (O.Path.empty())
      O.Path = A;
    else
      O.Paths.push_back(A);
  }
  if (O.Path.empty())
    return usage();

  std::unique_ptr<trace::TraceSession> TS;
  if (!TraceFile.empty())
    TS = std::make_unique<trace::TraceSession>();
  O.Trace = TS.get();

  daemon::Daemon::installSignalHandlers();
  daemon::Daemon D(O);

  int Ret;
  if (Once) {
    // One cold-start check; events still go to stdout as JSON lines.
    D.checkOnce(
        [](const std::string &L) {
          fputs(L.c_str(), stdout);
          fputc('\n', stdout);
          fflush(stdout);
        },
        /*Force=*/true);
    Ret = D.lastAllVerified() ? 0 : 1;
  } else if (!SockPath.empty()) {
    Ret = D.runSocket(SockPath);
  } else {
    Ret = D.runStdio(std::cin, std::cout);
  }

  // Clean shutdown flushes the trace last, after the final store GC.
  if (TS && !TraceFile.empty()) {
    std::string Err;
    if (!trace::writeChromeTrace(*TS, TraceFile, &Err))
      fprintf(stderr, "verifyd: %s\n", Err.c_str());
  }
  return Ret;
}
