//===- freelist_demo.cpp - Figure 3: deallocation with a free list --------===//
//
// Part of RefinedC++, a C++ reproduction of the RefinedC verifier (PLDI'21).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Verifies the paper's Figure 3 (`free` inserting a chunk into a sorted
/// free list), showing the ingredients at work: a recursive named type with
/// automatic unfolding, a magic-wand loop invariant, the rc::size overlay of
/// the header on the chunk, and the multiset solver enabled via rc::tactics.
/// Afterwards the allocator pair (alloc from Figure 1 + free from Figure 3)
/// is executed on the interpreter to exercise the verified code.
///
//===----------------------------------------------------------------------===//

#include "caesium/Interp.h"
#include "frontend/Frontend.h"
#include "refinedc/Checker.h"

#include <cstdio>

using namespace rcc;

static const char *Source = R"(
typedef struct
[[rc::refined_by("s: {gmultiset nat}")]]
[[rc::ptr_type("chunks_t: {s != {[]}} @ optional<&own<...>, null>")]]
[[rc::exists("n: nat", "tail: {gmultiset nat}")]]
[[rc::size("n")]]
[[rc::constraints("{s = {[n]} (+) tail}",
                  "{forall k, k in tail -> n <= k}")]]
chunk {
  [[rc::field("n @ int<size_t>")]] size_t size;
  [[rc::field("tail @ chunks_t")]] struct chunk* next;
}* chunks_t;

[[rc::parameters("s: {gmultiset nat}", "p: loc", "n: nat")]]
[[rc::args("p @ &own<s @ chunks_t>", "&own<uninit<n>>",
           "n @ int<size_t>")]]
[[rc::requires("{sizeof(struct chunk) <= n}")]]
[[rc::ensures("own p : {{[n]} (+) s} @ chunks_t")]]
[[rc::tactics("all: multiset_solver.")]]
void rc_free(chunks_t* list, void* data, size_t sz) {
  chunks_t* cur = list;
  [[rc::exists("cp: loc", "cs: {gmultiset nat}")]]
  [[rc::inv_vars("cur: cp @ &own<cs @ chunks_t>")]]
  [[rc::inv_vars("list: p @ &own<wand<own cp : {{[n]} (+) cs} @ chunks_t,"
                 "{{[n]} (+) s} @ chunks_t>>")]]
  while (*cur != NULL) {
    if (sz <= (*cur)->size) break;
    cur = &(*cur)->next;
  }
  chunks_t entry = data;
  entry->size = sz;
  entry->next = *cur;
  *cur = entry;
}

chunks_t freelist = 0;

int main() {
  // Free three blocks of different sizes, in shuffled order; the list must
  // come out sorted by chunk size, which main checks by walking it.
  rc_free(&freelist, rc_alloc(64), 64);
  rc_free(&freelist, rc_alloc(16), 16);
  rc_free(&freelist, rc_alloc(32), 32);
  size_t prev = 0;
  struct chunk* c = freelist;
  size_t count = 0;
  while (c != NULL) {
    rc_assert(prev <= c->size);
    prev = c->size;
    count += 1;
    c = c->next;
  }
  rc_assert(count == 3);
  return (int)prev;
}
)";

int main() {
  DiagnosticEngine Diags;
  auto AP = front::compileSource(Source, Diags);
  if (!AP) {
    printf("%s", Diags.render(Source).c_str());
    return 1;
  }
  refinedc::Checker Checker(*AP, Diags);
  if (!Checker.buildEnv()) {
    printf("%s", Diags.render(Source).c_str());
    return 1;
  }
  refinedc::FnResult R = Checker.verifyFunction("rc_free", {});
  if (!R.Verified) {
    printf("%s", R.renderError(Source).c_str());
    return 1;
  }
  printf("verified `rc_free` (Figure 3): %u rule applications, %u evars "
         "instantiated automatically,\n  side conditions: %u automatic, %u "
         "via multiset_solver (counted manual, as in Figure 7)\n",
         R.Stats.RuleApps, R.EvarsInstantiated, R.Stats.SideCondAuto,
         R.Stats.SideCondManual);

  caesium::Machine M(AP->Prog);
  caesium::ExecResult E = M.run("main", {});
  if (!E.ok()) {
    printf("execution failed: %s\n", E.Message.c_str());
    return 1;
  }
  printf("executed: free list ends sorted, largest chunk %lld bytes\n",
         (long long)E.MainRet.asSigned());
  return 0;
}
